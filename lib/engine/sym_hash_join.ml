open Relational
module Punctuation = Streams.Punctuation
module Element = Streams.Element

type side = {
  name : string;
  schema : Schema.t;
  schemes : Streams.Scheme.t list;
}

type slot = {
  side : side;
  state : Join_state.t;
  puncts : Punct_store.t;
  join_idxs : int array;
      (* attribute positions of this side appearing in the join predicate:
         a Null in one of them makes the tuple dead on arrival *)
}

let create ?(name = "join") ?(policy = Purge_policy.Eager)
    ?(telemetry = Telemetry.null) ?contract ~left ~right ~predicates () =
  if String.equal left.name right.name then
    invalid_arg "Sym_hash_join.create: identical input names";
  List.iter
    (fun atom ->
      if
        not
          (Predicate.involves atom left.name
          && Predicate.involves atom right.name)
      then
        invalid_arg
          (Fmt.str "Sym_hash_join.create: predicate %a not between %s and %s"
             Predicate.pp_atom atom left.name right.name))
    predicates;
  if predicates = [] then
    invalid_arg "Sym_hash_join.create: no join predicate";
  let join_idxs_of (side : side) =
    List.map
      (fun atom ->
        Schema.attr_index side.schema (Predicate.attr_on atom side.name))
      predicates
    |> List.sort_uniq compare |> Array.of_list
  in
  let l = { side = left; state = Join_state.create left.schema;
            puncts = Punct_store.create left.schema;
            join_idxs = join_idxs_of left }
  and r = { side = right; state = Join_state.create right.schema;
            puncts = Punct_store.create right.schema;
            join_idxs = join_idxs_of right } in
  let out_schema = Schema.concat ~stream:name left.schema right.schema in
  let stats = ref Operator.empty_stats in
  (* Chosen once: tick-carrying inserts/probes, result-latency spans and
     progress gauges exist only under a live telemetry handle, so the
     disabled operator runs the pre-instrumentation code. *)
  let instrumented = Telemetry.enabled telemetry in
  let now = ref 0 in
  let pending = ref 0 in
  (* Oldest informative punctuation not yet consumed by a purge round; the
     purge-lag baseline (0 under Eager, flush-cadence under Lazy). *)
  let pending_since = ref None in
  (* Emergency evictor for degraded mode: shed roughly a quarter of each
     side per round. *)
  (match contract with
  | None -> ()
  | Some c ->
      Contract.register_shedder c ~op:name (fun () ->
          let bytes () =
            (Join_state.mem_stats l.state).Join_state.approx_bytes
            + (Join_state.mem_stats r.state).Join_state.approx_bytes
          in
          let before = bytes () in
          let shed_side slot =
            let want = (Join_state.size slot.state + 3) / 4 in
            (* oldest first by insertion tick — deterministic, so replay
               and recovery shed the same tuples *)
            Join_state.evict_oldest slot.state ~count:want
          in
          let victims = shed_side l + shed_side r in
          (victims, max 0 (before - bytes ()))));
  let record_purge ~input ~trigger ~victims =
    if victims > 0 && Telemetry.enabled telemetry then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      Telemetry.emit telemetry
        (Obs.Event.Purge { tick; op = name; input; trigger; victims; lag });
      Telemetry.incr ~by:victims telemetry (name ^ ".purged_tuples");
      Telemetry.observe telemetry (name ^ ".purge_batch") victims;
      Telemetry.observe ~n:victims telemetry (name ^ ".purge_lag") lag
    end
  in
  (* One round = one event and one counter bump, victims or not — the
     registry counter, [stats.purge_rounds] and event replay must agree
     (a victim-less round is still a round that ran). *)
  let emit_purge_round ~trigger ~victims =
    if Telemetry.enabled telemetry then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      Telemetry.emit telemetry
        (Obs.Event.Purge_round { tick; op = name; trigger; victims; lag });
      Telemetry.incr telemetry (name ^ ".purge_rounds")
    end
  in
  let this_and_other input_name =
    if String.equal input_name l.side.name then (l, r)
    else if String.equal input_name r.side.name then (r, l)
    else invalid_arg (Fmt.str "Sym_hash_join %s: unknown input %s" name input_name)
  in
  (* The join-attribute bindings a tuple of [mine] imposes on the opposite
     stream: the partner must carry these exact values. *)
  let partner_bindings mine tup =
    List.map
      (fun atom ->
        let my_attr = Predicate.attr_on atom mine.side.name in
        let other_stream, other_attr = Predicate.other_side atom mine.side.name in
        ignore other_stream;
        let other_slot = if mine == l then r else l in
        ( Schema.attr_index other_slot.side.schema other_attr,
          Tuple.get_named tup my_attr ))
      predicates
  in
  let emit mine other_tup tup =
    (* Keep output attribute order fixed: left values then right values. *)
    if mine == l then Tuple.concat out_schema tup other_tup
    else Tuple.concat out_schema other_tup tup
  in
  let probe mine other tup =
    match predicates with
    | [] -> assert false
    | atom :: rest ->
        let other_attr_idx =
          Schema.attr_index other.side.schema
            (Predicate.attr_on atom other.side.name)
        in
        let v = Tuple.get_named tup (Predicate.attr_on atom mine.side.name) in
        Join_state.probe other.state ~attrs:[ other_attr_idx ] [ v ]
        |> List.filter (fun cand ->
               List.for_all (fun a -> Predicate.eval a tup cand) rest)
        |> List.map (fun cand -> emit mine cand tup)
  in
  (* Instrumented twin: each result's latency span is the element-clock
     distance from its stored partner's arrival to its emission. *)
  let h_latency = name ^ ".result_latency" in
  let probe_instrumented mine other tup =
    match predicates with
    | [] -> assert false
    | atom :: rest ->
        let other_attr_idx =
          Schema.attr_index other.side.schema
            (Predicate.attr_on atom other.side.name)
        in
        let v = Tuple.get_named tup (Predicate.attr_on atom mine.side.name) in
        let tick = Telemetry.now telemetry in
        Join_state.probe_entries other.state ~attrs:[ other_attr_idx ] [ v ]
        |> List.filter (fun (_, cand) ->
               List.for_all (fun a -> Predicate.eval a tup cand) rest)
        |> List.map (fun (cand_tick, cand) ->
               Telemetry.observe telemetry h_latency
                 (max 0 (tick - cand_tick));
               emit mine cand tup)
  in
  let probe = if instrumented then probe_instrumented else probe in
  (* Punctuation-progress frontier per input (see {!Punct_store.progress}):
     min-merged across shards for the lagging edge, max for the leading. *)
  let update_punct_progress slot =
    match Punct_store.progress slot.puncts with
    | None -> ()
    | Some (lo, hi) ->
        let base = name ^ "." ^ slot.side.name in
        Telemetry.set_gauge ~agg:Obs.Counters.Min telemetry
          (base ^ ".punct_progress_min") lo;
        Telemetry.set_gauge ~agg:Obs.Counters.Max telemetry
          (base ^ ".punct_progress_max") hi
  in
  (* Direct purge: drop the opposite tuples whose partner bindings are now
     fully covered by [mine]'s received punctuations. When the fresh
     punctuation pins a join attribute we only need to look at the matching
     hash bucket; otherwise nothing it pins can ever cover a partner
     binding and the state is untouched. *)
  let purge_opposite mine other fresh_punct =
    let pinned = Punctuation.const_bindings fresh_punct in
    let candidate_attrs =
      List.filter_map
        (fun (idx, v) ->
          let attr = (Schema.attr_at mine.side.schema idx).Schema.name in
          List.find_map
            (fun atom ->
              if
                Predicate.involves atom mine.side.name
                && String.equal (Predicate.attr_on atom mine.side.name) attr
              then
                let _, other_attr =
                  Predicate.other_side atom mine.side.name
                in
                Some (Schema.attr_index other.side.schema other_attr, v)
              else None)
            predicates)
        pinned
    in
    if Punctuation.is_ordered fresh_punct then
      (* a watermark covers a value range: no hash bucket to probe, sweep *)
      Join_state.purge_if other.state (fun x ->
          Punct_store.covers mine.puncts (partner_bindings other x))
    else
      match candidate_attrs with
      | [] -> 0
      | (attr_idx, v) :: _ ->
          let victims =
            Join_state.probe other.state ~attrs:[ attr_idx ] [ v ]
            |> List.filter (fun x ->
                   Punct_store.covers mine.puncts (partner_bindings other x))
          in
          Join_state.purge_if other.state (fun x ->
              List.exists (fun y -> Tuple.equal x y) victims)
  in
  let full_purge ~trigger () =
    stats := { !stats with purge_rounds = !stats.purge_rounds + 1 };
    let t0 = if instrumented then Telemetry.time_ns telemetry else 0 in
    let sweep mine other =
      let removed =
        Join_state.purge_if other.state (fun x ->
            Punct_store.covers mine.puncts (partner_bindings other x))
      in
      record_purge ~input:other.side.name ~trigger ~victims:removed;
      removed
    in
    let removed = sweep l r + sweep r l in
    stats := { !stats with tuples_purged = !stats.tuples_purged + removed };
    emit_purge_round ~trigger ~victims:removed;
    if instrumented then
      Telemetry.observe telemetry (name ^ ".purge_round_ns")
        (max 0 (Telemetry.time_ns telemetry - t0));
    pending_since := None;
    removed
  in
  let propagate () =
    List.concat_map
      (fun slot ->
        Punct_store.collect_forwardable slot.puncts
          ~drained:(fun p -> not (Join_state.exists_matching slot.state p))
        |> List.map (fun p ->
               let lifted =
                 List.map
                   (fun (idx, pat) ->
                     let attr =
                       (Schema.attr_at slot.side.schema idx).Schema.name
                     in
                     (Schema.qualify_attr ~origin:slot.side.name attr, pat))
                   (Punctuation.constraints p)
               in
               Punctuation.of_constraints out_schema lifted))
      [ l; r ]
    |> fun ps ->
    stats := { !stats with puncts_out = !stats.puncts_out + List.length ps };
    List.map (fun p -> Element.Punct p) ps
  in
  let process acc element =
    let add outs = List.iter (fun e -> acc := e :: !acc) outs in
    incr now;
    let mine, other = this_and_other (Element.stream_name element) in
    match element with
    | Element.Data tup ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        (* Input well-formedness: a tuple contradicting a punctuation its
           OWN side already delivered (distinct from the dead-on-arrival
           check below, which consults the partner's punctuations and is a
           legitimate-stream optimization, not a violation). *)
        let admit =
          if Punct_store.forbids mine.puncts tup then begin
            stats := { !stats with late_tuples = !stats.late_tuples + 1 };
            Contract.handle_late contract ~telemetry ~op:name
              ~input:mine.side.name tup
          end
          else `Admit
        in
        (match admit with
        | `Drop -> ()
        | `Admit ->
            if
              Array.exists
                (fun i -> Value.is_null (Tuple.get tup i))
                mine.join_idxs
            then begin
              (* Null join key: SQL equality never accepts Null, so the
                 tuple can join with nothing — dead on arrival. Neither
                 probed nor stored (storing would hand compare-keyed index
                 buckets a Null = Null match that Predicate.eval rejects;
                 see {!Join_state}). *)
              stats :=
                { !stats with tuples_purged = !stats.tuples_purged + 1 };
              record_purge ~input:mine.side.name ~trigger:"null_key"
                ~victims:1
            end
            else begin
              if Telemetry.enabled telemetry then begin
                Telemetry.incr telemetry (name ^ ".probes");
                Telemetry.incr telemetry (name ^ ".inserts")
              end;
              let results = probe mine other tup in
              (* dead on arrival: its partners are already punctuated away,
                 so after these results it can never match again — do not
                 store *)
              if Punct_store.covers other.puncts (partner_bindings mine tup)
              then begin
                stats :=
                  { !stats with tuples_purged = !stats.tuples_purged + 1 };
                record_purge ~input:mine.side.name ~trigger:"dead_on_arrival"
                  ~victims:1
              end
              else if instrumented then
                (* Global ticks advance with the insertion id, so
                   age-ordered shedding keeps the uninstrumented order. *)
                Join_state.insert ~tick:(Telemetry.now telemetry) mine.state
                  tup
              else Join_state.insert mine.state tup;
              stats :=
                {
                  !stats with
                  tuples_out = !stats.tuples_out + List.length results;
                };
              List.iter (fun t -> acc := Element.Data t :: !acc) results
            end)
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        let informative = Punct_store.insert mine.puncts ~now:!now p in
        if not informative then
          Contract.handle_punct_rejected contract ~telemetry ~op:name
            ~input:mine.side.name ~ordered:(Punctuation.is_ordered p);
        if informative then begin
          incr pending;
          if !pending_since = None then
            pending_since := Some (Telemetry.now telemetry);
          if instrumented then update_punct_progress mine
        end;
        (match policy with
        | Purge_policy.Eager ->
            pending := 0;
            if informative then begin
              stats := { !stats with purge_rounds = !stats.purge_rounds + 1 };
              let t0 =
                if instrumented then Telemetry.time_ns telemetry else 0
              in
              let removed = purge_opposite mine other p in
              record_purge ~input:other.side.name ~trigger:"eager"
                ~victims:removed;
              stats :=
                { !stats with tuples_purged = !stats.tuples_purged + removed };
              emit_purge_round ~trigger:"eager" ~victims:removed;
              if instrumented then
                Telemetry.observe telemetry (name ^ ".purge_round_ns")
                  (max 0 (Telemetry.time_ns telemetry - t0));
              pending_since := None
            end;
            add (propagate ())
        | Purge_policy.Lazy _ | Purge_policy.Adaptive _ ->
            let state_size =
              Join_state.size l.state + Join_state.size r.state
            in
            if Purge_policy.due policy ~punctuations_pending:!pending ~state_size
            then begin
              pending := 0;
              ignore
                (full_purge ~trigger:(Fmt.str "%a" Purge_policy.pp policy) ());
              add (propagate ())
            end
        | Purge_policy.Never -> ())
  in
  let push_batch arr =
    let acc = ref [] in
    Array.iter (process acc) arr;
    List.rev !acc
  in
  let push element = push_batch [| element |] in
  let flush () =
    match policy with
    | Purge_policy.Never -> []
    | Purge_policy.Eager | Purge_policy.Lazy _ | Purge_policy.Adaptive _ ->
        if !pending > 0 then begin
          pending := 0;
          ignore (full_purge ~trigger:"flush" ());
          propagate ()
        end
        else []
  in
  let save () =
    let module W = Streams.Wire.W in
    let b = Buffer.create 4096 in
    W.u8 b 1;
    Operator.write_stats b !stats;
    W.int b !now;
    W.int b !pending;
    W.option W.int b !pending_since;
    List.iter
      (fun slot ->
        Join_state.write_snapshot b slot.state;
        Punct_store.write_snapshot b slot.puncts)
      [ l; r ];
    Buffer.contents b
  in
  let load blob =
    let module R = Streams.Wire.R in
    let r' = R.of_string blob in
    let v = R.u8 r' in
    if v <> 1 then
      raise
        (Streams.Wire.Corrupt
           (Printf.sprintf "Sym_hash_join snapshot version %d, expected 1" v));
    let st = Operator.read_stats r' in
    let n = R.int r' in
    let p = R.int r' in
    let ps = R.option R.int r' in
    List.iter
      (fun slot ->
        Join_state.read_snapshot slot.state r';
        Punct_store.read_snapshot slot.puncts r')
      [ l; r ];
    R.expect_end r';
    stats := st;
    now := n;
    pending := p;
    pending_since := ps
  in
  {
    Operator.name;
    out_schema;
    input_names = [ left.name; right.name ];
    push;
    push_batch;
    flush;
    data_state_size =
      (fun () -> Join_state.size l.state + Join_state.size r.state);
    punct_state_size =
      (fun () -> Punct_store.size l.puncts + Punct_store.size r.puncts);
    index_state_size =
      (fun () ->
        Join_state.index_entries l.state + Join_state.index_entries r.state);
    state_bytes =
      (fun () ->
        (Join_state.mem_stats l.state).Join_state.approx_bytes
        + (Join_state.mem_stats r.state).Join_state.approx_bytes);
    stats =
      (* Fold in the store-level conservation counters on read: rejected
         arrivals are dropped punctuations, subsumption-displaced entries
         are purged punctuations. *)
      (fun () ->
        let dropped =
          Punct_store.rejected_count l.puncts
          + Punct_store.rejected_count r.puncts
        in
        let subsumed =
          Punct_store.subsumed_count l.puncts
          + Punct_store.subsumed_count r.puncts
        in
        {
          !stats with
          puncts_dropped = dropped;
          puncts_purged = !stats.puncts_purged + subsumed;
        });
    persistence = Operator.Snapshot { save; load };
  }
