type stats = {
  tuples_in : int;
  puncts_in : int;
  tuples_out : int;
  puncts_out : int;
  tuples_purged : int;
  puncts_purged : int;
  puncts_dropped : int;
  purge_rounds : int;
  late_tuples : int;
      (* arrivals contradicting a punctuation their own input already
         delivered — counted whether or not a contract responds to them *)
}

let empty_stats =
  {
    tuples_in = 0;
    puncts_in = 0;
    tuples_out = 0;
    puncts_out = 0;
    tuples_purged = 0;
    puncts_purged = 0;
    puncts_dropped = 0;
    purge_rounds = 0;
    late_tuples = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "in: %d tuples / %d puncts; out: %d tuples / %d puncts; purged: %d tuples / %d puncts in %d rounds; dropped %d puncts; late %d tuples"
    s.tuples_in s.puncts_in s.tuples_out s.puncts_out s.tuples_purged
    s.puncts_purged s.purge_rounds s.puncts_dropped s.late_tuples

let stats_to_alist s =
  [
    ("tuples_in", s.tuples_in);
    ("puncts_in", s.puncts_in);
    ("tuples_out", s.tuples_out);
    ("puncts_out", s.puncts_out);
    ("tuples_purged", s.tuples_purged);
    ("puncts_purged", s.puncts_purged);
    ("puncts_dropped", s.puncts_dropped);
    ("purge_rounds", s.purge_rounds);
    ("late_tuples", s.late_tuples);
  ]

let write_stats b s =
  let i = Streams.Wire.W.int b in
  i s.tuples_in;
  i s.puncts_in;
  i s.tuples_out;
  i s.puncts_out;
  i s.tuples_purged;
  i s.puncts_purged;
  i s.puncts_dropped;
  i s.purge_rounds;
  i s.late_tuples

let read_stats r =
  let i () = Streams.Wire.R.int r in
  let tuples_in = i () in
  let puncts_in = i () in
  let tuples_out = i () in
  let puncts_out = i () in
  let tuples_purged = i () in
  let puncts_purged = i () in
  let puncts_dropped = i () in
  let purge_rounds = i () in
  let late_tuples = i () in
  {
    tuples_in;
    puncts_in;
    tuples_out;
    puncts_out;
    tuples_purged;
    puncts_purged;
    puncts_dropped;
    purge_rounds;
    late_tuples;
  }

type persistence =
  | Stateless
  | Volatile of string
  | Snapshot of { save : unit -> string; load : string -> unit }

type t = {
  name : string;
  out_schema : Relational.Schema.t;
  input_names : string list;
  push : Streams.Element.t -> Streams.Element.t list;
  push_batch : Streams.Element.t array -> Streams.Element.t list;
  flush : unit -> Streams.Element.t list;
  data_state_size : unit -> int;
  punct_state_size : unit -> int;
  index_state_size : unit -> int;
  state_bytes : unit -> int;
  stats : unit -> stats;
  persistence : persistence;
}

let batch_of_push push arr =
  let acc = ref [] in
  Array.iter
    (fun e -> List.iter (fun o -> acc := o :: !acc) (push e))
    arr;
  List.rev !acc
