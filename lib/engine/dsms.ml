module Element = Streams.Element

type runner = { name : string; compiled : Executor.compiled }

type stats = {
  elements_seen : int;
  deliveries : int;
  punctuations_skipped : int;
}

type t = {
  register : Core.Register.t;
  runners : runner list;
  mutable seen : int;
  mutable delivered : int;
  mutable skipped : int;
  outputs : (string, Relational.Tuple.t list ref) Hashtbl.t;
}

let of_register ?(policy = Purge_policy.Eager) register =
  let runners =
    List.map
      (fun name ->
        {
          name;
          compiled =
            Executor.compile
              ~config:{ Executor.Config.default with policy }
              (Core.Register.query_of register name)
              (Core.Register.plan_of register name);
        })
      (Core.Register.queries register)
  in
  let outputs = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace outputs r.name (ref [])) runners;
  { register; runners; seen = 0; delivered = 0; skipped = 0; outputs }

(* Executor.run drives a whole sequence; for element-at-a-time delivery the
   DSMS reaches for the tree-feeding internals. *)
let push t element =
  t.seen <- t.seen + 1;
  List.filter_map
    (fun r ->
      let relevant = Core.Register.useful t.register r.name element in
      if not relevant then begin
        (match element with
        | Element.Punct _
          when List.mem
                 (Element.stream_name element)
                 (Query.Cjq.stream_names
                    (Core.Register.query_of t.register r.name)) ->
            (* the query reads this stream but the punctuation is useless
               to it: this is a saved delivery *)
            t.skipped <- t.skipped + 1
        | _ -> ());
        None
      end
      else begin
        t.delivered <- t.delivered + 1;
        let outs = Executor.feed_element r.compiled element in
        let sink = Hashtbl.find t.outputs r.name in
        List.iter
          (fun e ->
            match e with
            | Element.Data tup -> sink := tup :: !sink
            | Element.Punct _ -> ())
          outs;
        if outs = [] then None else Some (r.name, outs)
      end)
    t.runners

let run t elements =
  Seq.iter (fun e -> ignore (push t e)) elements;
  List.map
    (fun r ->
      let outs = Executor.flush_tree r.compiled in
      let sink = Hashtbl.find t.outputs r.name in
      List.iter
        (fun e ->
          match e with
          | Element.Data tup -> sink := tup :: !sink
          | Element.Punct _ -> ())
        outs;
      (r.name, List.rev !sink))
    t.runners

let stats t =
  {
    elements_seen = t.seen;
    deliveries = t.delivered;
    punctuations_skipped = t.skipped;
  }

let state_of t name =
  match List.find_opt (fun r -> r.name = name) t.runners with
  | Some r -> Executor.total_data_state r.compiled
  | None -> invalid_arg (Printf.sprintf "Dsms: unknown query %S" name)
