module Element = Streams.Element
module Wire = Streams.Wire

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type config = { every : int; dir : string option; fingerprint : string }

let config ?dir ?(fingerprint = "") ~every () =
  if every <= 0 then invalid_arg "Checkpoint.config: non-positive interval";
  { every; dir; fingerprint }

type shard = {
  ops : (string * string) list;  (** operator name -> snapshot blob *)
  emitted : int;
  out_rank : int;
}

type t = {
  barrier : int;
  consumed : int;
  shards : shard array;
  committed : (int * int * int * Element.t) list;
      (** (input seq, shard, rank, element), ascending — outputs already
          drained from the shards and owned by the cut *)
}

(* --- fingerprint -------------------------------------------------------- *)

(* The run configuration a checkpoint is only valid for: resume does not
   persist argv, it checks that the user re-ran with an equivalent one. *)
let fingerprint kvs =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Wire.W.string b k;
      Wire.W.string b v)
    kvs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- codec -------------------------------------------------------------- *)

let magic = "PSCKPT1\n"
let version = 1

let write_shard b (s : shard) =
  Wire.W.list (Wire.W.pair Wire.W.string Wire.W.string) b s.ops;
  Wire.W.int b s.emitted;
  Wire.W.int b s.out_rank

let read_shard r =
  let ops = Wire.R.list (Wire.R.pair Wire.R.string Wire.R.string) r in
  let emitted = Wire.R.int r in
  let out_rank = Wire.R.int r in
  { ops; emitted; out_rank }

(* File layout: magic bytes, version byte, length-prefixed fingerprint,
   length-prefixed payload, then the raw 16-byte MD5 of the payload. *)
let encode ~fingerprint:fp (t : t) =
  let payload =
    let b = Buffer.create 4096 in
    Wire.W.int b t.barrier;
    Wire.W.int b t.consumed;
    Wire.W.array write_shard b t.shards;
    Wire.W.list
      (fun b (seq, shard, rank, el) ->
        Wire.W.int b seq;
        Wire.W.int b shard;
        Wire.W.int b rank;
        Wire.write_element b el)
      b t.committed;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Wire.W.u8 b version;
  Wire.W.string b fp;
  Wire.W.string b payload;
  Buffer.add_string b (Digest.string payload);
  Buffer.contents b

let decode ~fingerprint:fp ~schema s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 then invalidf "truncated checkpoint header";
  if not (String.equal (String.sub s 0 mlen) magic) then
    invalidf "not a checkpoint file (bad magic)";
  let v = Char.code s.[mlen] in
  if v <> version then
    invalidf "checkpoint version %d, this build reads version %d" v version;
  let body = String.sub s (mlen + 1) (String.length s - mlen - 1) in
  let file_fp, payload =
    let r = Wire.R.of_string body in
    try
      let file_fp = Wire.R.string r in
      let payload = Wire.R.string r in
      if Wire.R.remaining r <> 16 then
        invalidf "checkpoint trailer is not a 16-byte digest";
      (file_fp, payload)
    with Wire.Corrupt m -> invalidf "corrupt checkpoint: %s" m
  in
  let crc = String.sub s (String.length s - 16) 16 in
  if not (String.equal crc (Digest.string payload)) then
    invalidf "checkpoint CRC mismatch";
  if not (String.equal file_fp fp) then
    invalidf
      "checkpoint was taken under a different run configuration (fingerprint \
       %s, expected %s)"
      file_fp fp;
  let r = Wire.R.of_string payload in
  try
    let barrier = Wire.R.int r in
    let consumed = Wire.R.int r in
    let shards = Wire.R.array read_shard r in
    let committed =
      Wire.R.list
        (fun r ->
          let seq = Wire.R.int r in
          let shard = Wire.R.int r in
          let rank = Wire.R.int r in
          let el = Wire.read_element ~schema r in
          (seq, shard, rank, el))
        r
    in
    Wire.R.expect_end r;
    { barrier; consumed; shards; committed }
  with Wire.Corrupt m -> invalidf "corrupt checkpoint payload: %s" m

(* --- files -------------------------------------------------------------- *)

let file_name barrier = Printf.sprintf "ckpt-%012d.bin" barrier

let is_ckpt_file name =
  String.length name = String.length (file_name 0)
  && String.sub name 0 5 = "ckpt-"
  && Filename.check_suffix name ".bin"

let list_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries |> List.filter is_ckpt_file
      |> List.sort String.compare
  | exception Sys_error m -> invalidf "cannot read checkpoint dir: %s" m

let fsync_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

(* Durability: write to a dot-tmp sibling, fsync, atomically rename into
   place — a crash mid-save leaves the previous checkpoint intact. Keeps the
   two most recent files so the newest can be re-written while the previous
   one still guards against a torn directory. *)
let save ~dir ~fingerprint:fp (t : t) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let bytes = encode ~fingerprint:fp t in
  let final = Filename.concat dir (file_name t.barrier) in
  let tmp = Filename.concat dir (Printf.sprintf ".ckpt-%012d.tmp" t.barrier) in
  let oc = open_out_bin tmp in
  output_string oc bytes;
  close_out oc;
  fsync_file tmp;
  Sys.rename tmp final;
  (try fsync_file dir with Unix.Unix_error _ -> ());
  (match List.rev (list_files dir) with
  | _ :: _ :: stale ->
      List.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) stale
  | _ -> ());
  (final, String.length bytes)

let load_latest ~dir ~fingerprint:fp ~schema =
  if not (Sys.file_exists dir) then
    invalidf "checkpoint dir %s does not exist" dir;
  match List.rev (list_files dir) with
  | [] -> invalidf "no checkpoint files in %s" dir
  | latest :: _ ->
      let path = Filename.concat dir latest in
      let ic = open_in_bin path in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      decode ~fingerprint:fp ~schema bytes

(* --- rolling output digest ---------------------------------------------- *)

(* A commutative, constant-space digest of the output multiset: each data
   tuple's canonical rendering ({!Executor.render_data}) is MD5'd and the
   16 bytes folded into running sums and xors (plus a count). Two runs
   emitted the same multiset iff the digests agree — the soak harness can
   compare a kill-storm run against a fault-free one without retaining
   either's outputs. *)
module Rolling = struct
  type h = {
    mutable count : int;
    mutable sum_lo : int64;
    mutable sum_hi : int64;
    mutable xor_lo : int64;
    mutable xor_hi : int64;
  }

  let create () =
    { count = 0; sum_lo = 0L; sum_hi = 0L; xor_lo = 0L; xor_hi = 0L }

  let add_rendering h s =
    let d = Digest.string s in
    let lo = String.get_int64_le d 0 in
    let hi = String.get_int64_le d 8 in
    h.count <- h.count + 1;
    h.sum_lo <- Int64.add h.sum_lo lo;
    h.sum_hi <- Int64.add h.sum_hi hi;
    h.xor_lo <- Int64.logxor h.xor_lo lo;
    h.xor_hi <- Int64.logxor h.xor_hi hi

  let count h = h.count

  let digest h =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%d:%Ld:%Ld:%Ld:%Ld" h.count h.sum_lo h.sum_hi
            h.xor_lo h.xor_hi))
end
