let word = Sys.word_size / 8

let words_per_value = 3
let entry_overhead_words = 8

let table_entry_bytes ~width = word * (entry_overhead_words + (words_per_value * width))

let list_cell_bytes = words_per_value * word

let tuple_bytes schema = table_entry_bytes ~width:(Relational.Schema.arity schema)

let keyed_table_bytes ~key_width ~payload_width ~entries =
  entries * table_entry_bytes ~width:(key_width + payload_width)
