(** The push-based operator interface shared by joins, group-by and
    projection. An operator consumes the elements of its named inputs and
    emits output elements (result tuples and propagated punctuations) whose
    schema is [out_schema]. *)

type stats = {
  tuples_in : int;
  puncts_in : int;
  tuples_out : int;
  puncts_out : int;
  tuples_purged : int;
  puncts_purged : int;
      (** punctuations removed from the store: expired, partner-purged, or
          displaced by a subsuming later punctuation *)
  puncts_dropped : int;
      (** punctuations that arrived uninformative (already subsumed by the
          store) and were never kept.  Together these close the
          conservation law
          [puncts_in = punct_state + puncts_purged + puncts_dropped]. *)
  purge_rounds : int;
  late_tuples : int;
      (** data tuples that arrived contradicting a punctuation their own
          input had already delivered ({!Punct_store.forbids}) — an input
          contract violation, counted whether or not a {!Contract}
          responds to it *)
}

val empty_stats : stats
val pp_stats : Format.formatter -> stats -> unit

(** [stats_to_alist s] — the stats record flattened to named integers, in
    declaration order (report/JSON rendering). *)
val stats_to_alist : stats -> (string * int) list

(** Binary (de)serialization of a stats record, in declaration order —
    building block for operator snapshot blobs. *)
val write_stats : Streams.Wire.W.t -> stats -> unit

val read_stats : Streams.Wire.R.t -> stats

(** How an operator participates in checkpointing ({!Checkpoint}):

    - [Stateless] — no state beyond its closure; nothing to save, a fresh
      compile restores it.
    - [Volatile reason] — carries state but cannot (yet) serialize it;
      a checkpoint over a plan containing one fails loudly rather than
      silently persisting a hole.
    - [Snapshot] — [save ()] serializes the full operator state (join
      states, punctuation stores, pending buffers, stats, clocks) to a
      versioned {!Streams.Wire} blob; [load blob] restores it {e in
      place} into an identically constructed operator.
      [load] @raise Streams.Wire.Corrupt on a truncated, malformed or
      version-mismatched blob. *)
type persistence =
  | Stateless
  | Volatile of string
  | Snapshot of { save : unit -> string; load : string -> unit }

type t = {
  name : string;
  out_schema : Relational.Schema.t;
  input_names : string list;
  push : Streams.Element.t -> Streams.Element.t list;
      (** feed one input element, collect outputs in order *)
  push_batch : Streams.Element.t array -> Streams.Element.t list;
      (** feed a run of input elements (any mix of the operator's inputs,
          in arrival order), collect outputs. Contract with {!push}: the
          data-tuple output sequence is identical to pushing the elements
          one at a time, and the final operator state agrees on batch
          boundaries; operators amortizing punctuation work per batch
          (see {!Mjoin}) may group propagated punctuations at the end of a
          punctuation run instead of emitting them per punctuation, so
          punctuation outputs are sequence-equal only as a multiset per
          run. Non-batching operators use {!batch_of_push}, which is
          exactly the element-at-a-time path. *)
  flush : unit -> Streams.Element.t list;
      (** run any deferred purge/propagation work (lazy policies) *)
  data_state_size : unit -> int;
  punct_state_size : unit -> int;
  index_state_size : unit -> int;
      (** entries held by secondary join-state indexes — with eager index
          maintenance this stays O(data_state_size); a gap between the two
          is a purge leak *)
  state_bytes : unit -> int;
      (** approximate resident bytes of the operator's data state including
          index structures (trend indicator, not an exact measurement) *)
  stats : unit -> stats;
  persistence : persistence;
      (** checkpoint participation; {!Telemetry.wrap_op} passes it
          through unchanged *)
}

(** [batch_of_push push] — the default batch implementation: push each
    element in order and concatenate the outputs. Byte-identical to the
    element-at-a-time path, so operators without a native batch fast path
    set [push_batch = batch_of_push push]. *)
val batch_of_push :
  (Streams.Element.t -> Streams.Element.t list) ->
  Streams.Element.t array ->
  Streams.Element.t list
