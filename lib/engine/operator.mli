(** The push-based operator interface shared by joins, group-by and
    projection. An operator consumes the elements of its named inputs and
    emits output elements (result tuples and propagated punctuations) whose
    schema is [out_schema]. *)

type stats = {
  tuples_in : int;
  puncts_in : int;
  tuples_out : int;
  puncts_out : int;
  tuples_purged : int;
  puncts_purged : int;
      (** punctuations removed from the store: expired, partner-purged, or
          displaced by a subsuming later punctuation *)
  puncts_dropped : int;
      (** punctuations that arrived uninformative (already subsumed by the
          store) and were never kept.  Together these close the
          conservation law
          [puncts_in = punct_state + puncts_purged + puncts_dropped]. *)
  purge_rounds : int;
  late_tuples : int;
      (** data tuples that arrived contradicting a punctuation their own
          input had already delivered ({!Punct_store.forbids}) — an input
          contract violation, counted whether or not a {!Contract}
          responds to it *)
}

val empty_stats : stats
val pp_stats : Format.formatter -> stats -> unit

(** [stats_to_alist s] — the stats record flattened to named integers, in
    declaration order (report/JSON rendering). *)
val stats_to_alist : stats -> (string * int) list

type t = {
  name : string;
  out_schema : Relational.Schema.t;
  input_names : string list;
  push : Streams.Element.t -> Streams.Element.t list;
      (** feed one input element, collect outputs in order *)
  flush : unit -> Streams.Element.t list;
      (** run any deferred purge/propagation work (lazy policies) *)
  data_state_size : unit -> int;
  punct_state_size : unit -> int;
  index_state_size : unit -> int;
      (** entries held by secondary join-state indexes — with eager index
          maintenance this stays O(data_state_size); a gap between the two
          is a purge leak *)
  state_bytes : unit -> int;
      (** approximate resident bytes of the operator's data state including
          index structures (trend indicator, not an exact measurement) *)
  stats : unit -> stats;
}
