(** Runtime punctuation-contract monitor.

    The paper's safety guarantee (bounded state, Theorems 1–5) is a
    conditional statement: it holds {e if} punctuations keep arriving,
    are never contradicted by later data, and never regress. Those are
    assumptions about the {e input}, and production streams break them —
    lossy transports drop punctuations, at-least-once transports
    duplicate them, reordering delivers a tuple after the punctuation
    that promised it away. This module is the runtime check of those
    assumptions, plus a configurable response when they fail.

    Violations detected:
    - {b late_data} — a data tuple contradicting a punctuation its own
      input already delivered ({!Punct_store.forbids}); the direct breach
      of the punctuation's promise. Detected per join input on every
      insert, contract or no contract.
    - {b dup_punct} — a constant punctuation the store already holds
      (at-least-once delivery). Uninformative, so always count-only: a
      legitimate run can also produce subsumed arrivals.
    - {b punct_regression} — a watermark at or below one already stored.
      Actionable: a regressing watermark means the source's clock went
      backwards (or its transport reordered), and purges already taken
      under the higher watermark cannot be undone.
    - {b punct_stall} — a registered (stream, scheme) source showing no
      punctuation progress for more than [grace] ticks: the stalled
      punctuation generator whose silence voids the boundedness
      guarantee. Latched per source; reported under the pseudo-operator
      ["contract"] and flagged on the watchdog, naming the broken
      scheme.

    Responses ({!action}): [Fail] stops the run with
    {!Violation_failure} (CLI exit 4); [Drop_late] discards late tuples;
    [Quarantine] diverts them to a bounded side-buffer; [Degrade] admits
    everything and keeps running — optionally under a state-byte budget
    enforced by emergency eviction ({!register_shedder} /
    {!enforce_budget}); [Count] only counts.

    Event/counter discipline (checked by [pstream_obs verify]): every
    [Violation]/[Load_shed] event carrying a real operator name is
    mirrored by a registry counter ([<op>.late_tuples],
    [<op>.quarantined_tuples], [<op>.dup_puncts], [<op>.shed_tuples])
    under the same [Telemetry.enabled] gate. *)

type action =
  | Fail  (** raise {!Violation_failure} on the first actionable violation *)
  | Drop_late  (** discard late tuples; count punctuation anomalies *)
  | Quarantine  (** divert late tuples to a bounded side-buffer *)
  | Degrade
      (** admit everything, keep running; alarms + optional state budget *)
  | Count  (** observe only — never changes behaviour *)

type config = {
  action : action;
  grace : int option;
      (** ticks a registered source may go without punctuation progress
          before it is declared stalled; [None] disables stall checks *)
  state_budget_bytes : int option;
      (** under [Degrade]: emergency-evict join state above this estimate *)
  quarantine_cap : int;  (** quarantined tuples retained; overflow is counted *)
}

(** [Count], no grace, no budget, cap 1024. *)
val default_config : config

val pp_action : Format.formatter -> action -> unit
val action_of_string : string -> (action, string) result

type violation = { op : string; input : string; kind : string; tick : int }

exception Violation_failure of violation

val pp_violation : Format.formatter -> violation -> unit

type t

val create : config -> t
val config : t -> config

(** [handle_late contract ~telemetry ~op ~input tup] — decide the fate of
    a tuple that {!Punct_store.forbids} flagged on arrival at [op]'s
    input [input]. Emits the [Violation] event and bumps the paired
    counters (when telemetry is enabled), quarantines under
    [Quarantine], and raises {!Violation_failure} under [Fail]. With
    [None] for [contract] the violation is still counted and the tuple
    admitted — detection is unconditional, response is opt-in. *)
val handle_late :
  t option ->
  telemetry:Telemetry.t ->
  op:string ->
  input:string ->
  Relational.Tuple.t ->
  [ `Admit | `Drop ]

(** [handle_punct_rejected contract ~telemetry ~op ~input ~ordered] — a
    punctuation the store rejected as uninformative: a duplicate/subsumed
    constant ([ordered = false], count-only) or a regressed-or-duplicate
    watermark ([ordered = true], actionable — raises under [Fail]). *)
val handle_punct_rejected :
  t option ->
  telemetry:Telemetry.t ->
  op:string ->
  input:string ->
  ordered:bool ->
  unit

(** [register_source t ~stream scheme] — arm stall tracking for one
    (stream, scheme) pair, with last progress at tick 0. A source never
    registered is never reported stalled. *)
val register_source : t -> stream:string -> Streams.Scheme.t -> unit

(** [note_element t ~tick el] — record punctuation progress: a [Punct]
    element instantiating a registered scheme of its stream refreshes
    that source's clock. Data elements are ignored. *)
val note_element : t -> tick:int -> Streams.Element.t -> unit

(** [check_stalls t ~emit ?watchdog ~tick ()] — newly stalled
    [(stream, scheme)] pairs at [tick]. For each, emits a [Violation]
    event (pseudo-operator ["contract"], kind [punct_stall]) through
    [emit], latches a watchdog alarm naming the broken scheme, and under
    [Fail] raises {!Violation_failure}. No-op when [grace] is [None]. *)
val check_stalls :
  t ->
  emit:(Obs.Event.t -> unit) ->
  ?watchdog:Obs.Watchdog.t ->
  tick:int ->
  unit ->
  (string * string) list

(** [register_shedder t ~op f] — register [op]'s emergency evictor:
    [f ()] sheds a slice of [op]'s join state and returns
    [(victims, bytes_freed_estimate)]. *)
val register_shedder : t -> op:string -> (unit -> int * int) -> unit

(** [enforce_budget t ~telemetry ~tick ~bytes_now ()] — under [Degrade]
    with a budget: while [bytes_now ()] exceeds it (bounded rounds),
    invoke every shedder, emitting a [Load_shed] event and bumping
    [<op>.shed_tuples] per operator that shed. Returns total victims.
    No-op otherwise. *)
val enforce_budget :
  t -> telemetry:Telemetry.t -> tick:int -> bytes_now:(unit -> int) -> unit -> int

(** Cumulative observation counters (per contract instance). *)

val late_count : t -> int
val dup_count : t -> int
val stall_count : t -> int
val shed_count : t -> int

(** The quarantine side-buffer: [(op, input, tuple)] in arrival order,
    at most [quarantine_cap] entries; {!quarantine_overflow} counts the
    late tuples dropped once the buffer was full. *)
val quarantined : t -> (string * string * Relational.Tuple.t) list

val quarantined_count : t -> int
val quarantine_overflow : t -> int

(** Counter summary for a run report's meta object. *)
val meta_counters : t -> (string * Obs.Json.t) list
