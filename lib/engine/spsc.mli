(** Bounded single-producer / single-consumer queue between domains.

    The channel between the {!Parallel_executor} driver (sole producer)
    and one shard worker domain (sole consumer): a fixed-capacity ring
    guarded by a mutex, with two condition variables for the full/empty
    edges. Blocking — not spinning — matters more than lock-freedom
    here: messages are element {e batches}, so the lock is taken once
    per few hundred elements, while a spin-waiting domain on a
    core-constrained host would burn entire scheduler timeslices the
    opposite side needs to make progress (the classic single-core
    livelock of busy-wait queues). OCaml 5's [Mutex]/[Condition] are
    domain-safe and give the release/acquire edges that publish each
    slot to the other side.

    Not linearizable under multiple producers or consumers — the
    single-producer/single-consumer contract is on the caller. *)

type 'a t

(** [create ~capacity] — an empty queue holding at most [capacity]
    elements. @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> 'a t

(** [push t x] — enqueue, blocking while the queue is full. Producer
    side only. *)
val push : 'a t -> 'a -> unit

(** [pop t] — dequeue, [None] when empty. Consumer side only. *)
val pop : 'a t -> 'a option

(** [pop_wait t] — dequeue, blocking while the queue is empty. Consumer
    side only. *)
val pop_wait : 'a t -> 'a

(** Elements currently queued. *)
val length : 'a t -> int
