(** Bounded single-producer / single-consumer queue between domains,
    with close semantics.

    The channel between the {!Parallel_executor} driver (sole producer)
    and one shard worker domain (sole consumer): a fixed-capacity ring
    guarded by a mutex, with two condition variables for the full/empty
    edges. Blocking — not spinning — matters more than lock-freedom
    here: messages are element {e batches}, so the lock is taken once
    per few hundred elements, while a spin-waiting domain on a
    core-constrained host would burn entire scheduler timeslices the
    opposite side needs to make progress (the classic single-core
    livelock of busy-wait queues). OCaml 5's [Mutex]/[Condition] are
    domain-safe and give the release/acquire edges that publish each
    slot to the other side.

    Supervision needs one property lock-free rings make hard: a
    {e poison} protocol. Either side may {!close} the queue; from then
    on the other side can never block forever on a dead peer —

    - a producer parked on a full queue wakes and gets [`Closed];
    - a consumer drains whatever was enqueued before the close, then
      gets [`Closed] instead of waiting.

    Closing is idempotent and irreversible.

    Not linearizable under multiple producers or consumers — the
    single-producer/single-consumer contract is on the caller. *)

type 'a t

(** [create ~capacity] — an empty open queue holding at most [capacity]
    elements. @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> 'a t

(** Close the queue and wake both sides. Elements already enqueued
    remain poppable; further pushes are refused. A crashing worker
    closes its own queue so the driver's next push fails fast instead
    of deadlocking on a consumer that will never drain. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** [push t x] — enqueue, blocking while the queue is full {e and
    open}. [`Closed] means the element was {e not} enqueued. Producer
    side only. *)
val push : 'a t -> 'a -> [ `Ok | `Closed ]

(** Like {!push} but gives up after [timeout_s] seconds if the consumer
    neither drains nor closes — the wedged-peer escape hatch for
    supervision. [`Timeout] means the element was not enqueued. Polls
    (OCaml's [Condition] has no timed wait); fine for a rare last
    resort, wrong for a steady-state path. *)
val push_timeout :
  'a t -> timeout_s:float -> 'a -> [ `Ok | `Closed | `Timeout ]

(** [pop t] — non-blocking dequeue. [`Closed] only when the queue is
    both empty and closed; a closed queue with residue still yields
    [`Item]. Consumer side only. *)
val pop : 'a t -> [ `Item of 'a | `Empty | `Closed ]

(** [pop_wait t] — dequeue, blocking while the queue is empty {e and
    open}; drains residue after a close before reporting [`Closed].
    Consumer side only. *)
val pop_wait : 'a t -> [ `Item of 'a | `Closed ]

(** Elements currently queued. *)
val length : 'a t -> int
