open Relational
module Scheme = Streams.Scheme
module Punctuation = Streams.Punctuation
module Element = Streams.Element

type input = {
  name : string;
  schema : Schema.t;
  schemes : Scheme.t list;
}

let scheme_set_of inputs =
  Scheme.Set.of_list (List.concat_map (fun i -> i.schemes) inputs)

let purge_plans ~inputs ~predicates =
  let names = List.map (fun i -> i.name) inputs in
  let schemes = scheme_set_of inputs in
  List.map
    (fun n -> (n, Core.Chained_purge.derive names predicates schemes ~root:n))
    names

(* Per-input runtime state. *)
type slot = {
  input : input;
  state : Join_state.t;
  puncts : Punct_store.t;
  plan : Core.Chained_purge.plan option;
  join_idxs : int array;
      (* attribute positions of this input appearing in any join predicate:
         a Null in one of them makes the tuple dead on arrival *)
}

let create ?(name = "mjoin") ?(policy = Purge_policy.Eager) ?punct_lifespan
    ?(punct_partner_purge = false) ?(telemetry = Telemetry.null) ?contract
    ~inputs ~predicates () =
  if List.length inputs < 2 then
    invalid_arg "Mjoin.create: need at least two inputs";
  let names = List.map (fun i -> i.name) inputs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Mjoin.create: duplicate input names";
  List.iter
    (fun atom ->
      let s1, s2 = Predicate.streams_of atom in
      if not (List.mem s1 names && List.mem s2 names) then
        invalid_arg
          (Fmt.str "Mjoin.create: predicate %a references unknown input"
             Predicate.pp_atom atom))
    predicates;
  let slots =
    let plans = purge_plans ~inputs ~predicates in
    List.map
      (fun input ->
        let join_idxs =
          List.filter_map
            (fun atom ->
              if Predicate.involves atom input.name then
                Some
                  (Schema.attr_index input.schema
                     (Predicate.attr_on atom input.name))
              else None)
            predicates
          |> List.sort_uniq compare |> Array.of_list
        in
        {
          input;
          state = Join_state.create input.schema;
          puncts = Punct_store.create input.schema;
          plan = List.assoc input.name plans;
          join_idxs;
        })
      inputs
    |> Array.of_list
  in
  let slot_tbl = Hashtbl.create 8 in
  Array.iteri (fun i s -> Hashtbl.add slot_tbl s.input.name i) slots;
  let slot_of n = slots.(Hashtbl.find slot_tbl n) in
  let out_schema =
    Schema.concat_all ~stream:name (List.map (fun i -> i.schema) inputs)
  in
  let orders = Probe.orders names predicates in
  let stats = ref Operator.empty_stats in
  (* Chosen once: the instrumented paths (tick-carrying inserts and probes,
     result-latency spans, punctuation-progress gauges) exist only when a
     live telemetry handle was passed, so the disabled operator is the same
     code it was before instrumentation existed. *)
  let instrumented = Telemetry.enabled telemetry in
  let now = ref 0 in
  let pending_puncts = ref 0 in
  (* Global tick of the oldest informative punctuation not yet followed by
     a purge round: the purge-lag baseline. Eager purging fires in the same
     push (or on the same batch boundary), so lag is 0; lazy purging
     defers, so lag reflects the flush cadence (§5's cost axis). *)
  let pending_since = ref None in
  (* Emergency evictor for degraded mode: shed roughly a quarter of each
     input's state per round, oldest first by insertion tick — a
     deterministic order, so a sharded run and its recovery replay shed the
     same tuples. Shed tuples may silence future matches — that is load
     shedding's documented trade. *)
  (match contract with
  | None -> ()
  | Some c ->
      Contract.register_shedder c ~op:name (fun () ->
          let bytes () =
            Array.fold_left
              (fun acc s ->
                acc + (Join_state.mem_stats s.state).Join_state.approx_bytes)
              0 slots
          in
          let before = bytes () in
          let victims =
            Array.fold_left
              (fun acc s ->
                let want = (Join_state.size s.state + 3) / 4 in
                acc + Join_state.evict_oldest s.state ~count:want)
              0 slots
          in
          (victims, max 0 (before - bytes ()))));

  (* --- result assembly ---------------------------------------------- *)
  (* Each output tuple is the declared-order concatenation of one tuple
     per input. The layout (per-slot offsets) and the output arity are
     validated here, once, so the per-result path can assemble values with
     blits and skip Tuple.of_array validation. *)
  let n_inputs = Array.length slots in
  let offsets = Array.make n_inputs 0 in
  let total_arity =
    let acc = ref 0 in
    Array.iteri
      (fun i s ->
        offsets.(i) <- !acc;
        acc := !acc + Schema.arity s.input.schema)
      slots;
    !acc
  in
  if total_arity <> Schema.arity out_schema then
    invalid_arg "Mjoin.create: out_schema arity mismatch";
  let progs =
    let names_arr = Array.map (fun s -> s.input.name) slots in
    let schemas = Array.map (fun s -> s.input.schema) slots in
    let states = Array.map (fun s -> s.state) slots in
    Array.map
      (fun s ->
        Probe.compile ~names:names_arr ~schemas ~states
          ~steps:(List.assoc s.input.name orders))
      slots
  in
  let probe_from ix tup =
    let results = ref [] in
    Probe.run_compiled progs.(ix) tup ~emit:(fun asg ->
        let out = Array.make total_arity Value.Null in
        Array.iteri (fun s cand -> Tuple.blit cand out offsets.(s)) asg;
        results := Tuple.unsafe_of_array out_schema out :: !results);
    List.rev !results
  in
  (* Instrumented twin: each result's latency span is the element-clock
     distance from the arrival of its oldest contributing tuple to its
     emission — the end-to-end "how stale is this answer" number the
     purge-lag histogram cannot give (purge lag watches state, this watches
     results). *)
  let h_latency = name ^ ".result_latency" in
  let probe_from_instrumented ix tup =
    let tick = Telemetry.now telemetry in
    let results = ref [] in
    Probe.run_compiled_entries progs.(ix) tup ~tick ~emit:(fun asg ticks ->
        let out = Array.make total_arity Value.Null in
        Array.iteri (fun s cand -> Tuple.blit cand out offsets.(s)) asg;
        let oldest = Array.fold_left min ticks.(0) ticks in
        Telemetry.observe telemetry h_latency (max 0 (tick - oldest));
        results := Tuple.unsafe_of_array out_schema out :: !results);
    List.rev !results
  in
  let probe_from = if instrumented then probe_from_instrumented else probe_from in
  (* Punctuation-progress frontier per input: the lowest / highest tick the
     stored punctuations vouch for. Min-merged across shards (the lagging
     shard defines global progress), max-merged for the leading edge. *)
  let update_punct_progress slot =
    match Punct_store.progress slot.puncts with
    | None -> ()
    | Some (lo, hi) ->
        let base = name ^ "." ^ slot.input.name in
        Telemetry.set_gauge ~agg:Obs.Counters.Min telemetry
          (base ^ ".punct_progress_min") lo;
        Telemetry.set_gauge ~agg:Obs.Counters.Max telemetry
          (base ^ ".punct_progress_max") hi
  in

  (* --- purging -------------------------------------------------------- *)
  let covered ~stream bindings =
    Punct_store.covers (slot_of stream).puncts bindings
  in
  let record_purge ~input ~trigger ~victims =
    if victims > 0 && Telemetry.enabled telemetry then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      Telemetry.emit telemetry
        (Obs.Event.Purge { tick; op = name; input; trigger; victims; lag });
      Telemetry.incr ~by:victims telemetry (name ^ ".purged_tuples");
      Telemetry.observe telemetry (name ^ ".purge_batch") victims;
      Telemetry.observe ~n:victims telemetry (name ^ ".purge_lag") lag
    end
  in
  let purge_round ~trigger =
    stats := { !stats with purge_rounds = !stats.purge_rounds + 1 };
    let t0 = if instrumented then Telemetry.time_ns telemetry else 0 in
    let round_victims = ref 0 in
    Array.iter
      (fun slot ->
        match slot.plan with
        | None -> ()
        | Some plan ->
            let snapshots = Hashtbl.create 8 in
            let states stream_name =
              match Hashtbl.find_opt snapshots stream_name with
              | Some r -> r
              | None ->
                  let r = Join_state.to_relation (slot_of stream_name).state in
                  Hashtbl.add snapshots stream_name r;
                  r
            in
            (* Memoize per distinct root-attribute projection: the chain
               only reads the root tuple through its pinned attributes. *)
            let root_attrs =
              List.concat_map
                (fun (step : Core.Chained_purge.step) ->
                  List.filter_map
                    (fun (pin : Core.Chained_purge.pin) ->
                      if pin.source = slot.input.name then
                        Some pin.source_attr
                      else None)
                    step.pins)
                plan.steps
              |> List.sort_uniq String.compare
              |> List.map (Schema.attr_index slot.input.schema)
            in
            let memo = Hashtbl.create 64 in
            let removed =
              Join_state.purge_if slot.state (fun t ->
                  let key = Tuple.project t root_attrs in
                  match Hashtbl.find_opt memo key with
                  | Some b -> b
                  | None ->
                      let b =
                        Core.Chained_purge.tuple_purgeable plan ~states
                          ~covered ~root_tuple:t
                      in
                      Hashtbl.add memo key b;
                      b)
            in
            record_purge ~input:slot.input.name ~trigger ~victims:removed;
            round_victims := !round_victims + removed;
            stats :=
              { !stats with tuples_purged = !stats.tuples_purged + removed })
      slots;
    if Telemetry.enabled telemetry then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      (* One round = one event and one counter bump, victims or not — the
         registry counter, [stats.purge_rounds] and event replay must
         agree (a victim-less round is still a round that ran). *)
      Telemetry.emit telemetry
        (Obs.Event.Purge_round
           { tick; op = name; trigger; victims = !round_victims; lag });
      Telemetry.incr telemetry (name ^ ".purge_rounds");
      Telemetry.observe telemetry (name ^ ".purge_round_ns")
        (max 0 (Telemetry.time_ns telemetry - t0))
    end
  in

  (* --- punctuation maintenance & propagation -------------------------- *)
  let maintain_punct_stores () =
    Array.iter
      (fun slot ->
        (match punct_lifespan with
        | Some lifespan ->
            let n = Punct_store.expire slot.puncts ~now:!now lifespan in
            stats := { !stats with puncts_purged = !stats.puncts_purged + n }
        | None -> ());
        if punct_partner_purge then begin
          let n =
            Punct_store.purge_if slot.puncts (fun p ->
                Core.Punct_purge.punct_purgeable_by_partners ~preds:predicates
                  ~schema_of:(fun s -> (slot_of s).input.schema)
                  ~covered p)
          in
          stats := { !stats with puncts_purged = !stats.puncts_purged + n }
        end)
      slots
  in
  let propagate () =
    Array.to_list slots
    |> List.concat_map (fun slot ->
           Punct_store.collect_forwardable slot.puncts
             ~drained:(fun p -> not (Join_state.exists_matching slot.state p))
           |> List.map (fun p ->
                  let lifted =
                    List.map
                      (fun (idx, pat) ->
                        let attr =
                          (Schema.attr_at slot.input.schema idx).Schema.name
                        in
                        (Schema.qualify_attr ~origin:slot.input.name attr, pat))
                      (Punctuation.constraints p)
                  in
                  Punctuation.of_constraints out_schema lifted))
  in
  let purge_and_propagate ~trigger () =
    purge_round ~trigger;
    maintain_punct_stores ();
    pending_puncts := 0;
    pending_since := None;
    let out = propagate () in
    stats := { !stats with puncts_out = !stats.puncts_out + List.length out };
    List.map (fun p -> Element.Punct p) out
  in

  (* --- the operator --------------------------------------------------- *)
  let trigger_of_policy () = Fmt.str "%a" Purge_policy.pp policy in
  let push_batch arr =
    let acc = ref [] in
    let add outs = List.iter (fun e -> acc := e :: !acc) outs in
    (* Eager rounds are amortized per batch: a run of punctuations
       accumulates in [pending_puncts] and a single round fires before the
       next data element probes (so data results see the same purged state
       as the element-at-a-time path — purged tuples are provably
       unmatchable, so results are unaffected) and again at batch end, so
       purge lag stays 0 on batch boundaries. Propagated punctuations for
       the run are emitted together — multiset-equal to the per-element
       path, as {!Operator.t.push_batch} allows. *)
    let flush_coalesced () =
      match policy with
      | Purge_policy.Eager when !pending_puncts > 0 ->
          add (purge_and_propagate ~trigger:(trigger_of_policy ()) ())
      | _ -> ()
    in
    Array.iter
      (fun element ->
        incr now;
        let input_name = Element.stream_name element in
        let ix =
          match Hashtbl.find_opt slot_tbl input_name with
          | Some ix -> ix
          | None ->
              invalid_arg
                (Fmt.str "Mjoin %s: element for unknown input %s" name
                   input_name)
        in
        let slot = slots.(ix) in
        match element with
        | Element.Data tup ->
            flush_coalesced ();
            stats := { !stats with tuples_in = !stats.tuples_in + 1 };
            (* Input well-formedness: does this tuple contradict a
               punctuation its own input already delivered? Detection is
               unconditional (the stat and counter always move); the
               response is the contract's. *)
            let admit =
              if Punct_store.forbids slot.puncts tup then begin
                stats := { !stats with late_tuples = !stats.late_tuples + 1 };
                Contract.handle_late contract ~telemetry ~op:name
                  ~input:input_name tup
              end
              else `Admit
            in
            (match admit with
            | `Drop ->
                (* Late tuples must not probe either: a dropped/quarantined
                   run's answer is the fault-free answer. *)
                ()
            | `Admit ->
                if
                  Array.exists
                    (fun i -> Value.is_null (Tuple.get tup i))
                    slot.join_idxs
                then begin
                  (* Null join key: SQL equality never accepts Null, so the
                     tuple can satisfy no completion involving its stream —
                     dead on arrival. It is neither probed nor stored
                     (storing would hand compare-keyed index buckets a
                     Null = Null match that Predicate.eval rejects; see
                     {!Join_state}). *)
                  stats :=
                    { !stats with tuples_purged = !stats.tuples_purged + 1 };
                  record_purge ~input:input_name ~trigger:"null_key"
                    ~victims:1
                end
                else begin
                  if Telemetry.enabled telemetry then begin
                    Telemetry.incr telemetry (name ^ ".probes");
                    Telemetry.incr telemetry (name ^ ".inserts")
                  end;
                  let results = probe_from ix tup in
                  if instrumented then
                    (* The global element clock only ever advances with the
                       insertion id, so age-ordered eviction sees the same
                       total order as the uninstrumented default (tick =
                       id) — shedding stays run-identical. *)
                    Join_state.insert ~tick:(Telemetry.now telemetry)
                      slot.state tup
                  else Join_state.insert slot.state tup;
                  stats :=
                    {
                      !stats with
                      tuples_out = !stats.tuples_out + List.length results;
                    };
                  List.iter (fun t -> acc := Element.Data t :: !acc) results
                end)
        | Element.Punct p ->
            stats := { !stats with puncts_in = !stats.puncts_in + 1 };
            let informative = Punct_store.insert slot.puncts ~now:!now p in
            if not informative then
              Contract.handle_punct_rejected contract ~telemetry ~op:name
                ~input:input_name ~ordered:(Punctuation.is_ordered p);
            if informative then begin
              incr pending_puncts;
              if !pending_since = None then
                pending_since := Some (Telemetry.now telemetry);
              if instrumented then update_punct_progress slot
            end;
            (match policy with
            | Purge_policy.Eager | Purge_policy.Never ->
                (* Eager: deferred to the next data element / batch end.
                   Never: no rounds, by definition. *)
                ()
            | Purge_policy.Lazy _ | Purge_policy.Adaptive _ ->
                let state_size =
                  Array.fold_left
                    (fun a s -> a + Join_state.size s.state)
                    0 slots
                in
                if
                  Purge_policy.due policy
                    ~punctuations_pending:!pending_puncts ~state_size
                then add (purge_and_propagate ~trigger:(trigger_of_policy ()) ())))
      arr;
    flush_coalesced ();
    List.rev !acc
  in
  let push element = push_batch [| element |] in
  let flush () =
    match policy with
    | Purge_policy.Never -> []
    | Purge_policy.Eager | Purge_policy.Lazy _ | Purge_policy.Adaptive _ ->
        (* Always run the final round, even with no punctuation pending:
           purge rounds fire on punctuation *arrival*, so a tuple that
           arrives after the punctuation already covering it has had no
           round run over it — it is provably unmatchable yet retained.
           The final state must be the purgeability fixpoint of the whole
           input, not of its punctuation-arrival prefix (and a sharded
           run, whose shards each see only a punctuation subsequence,
           relies on exactly that fixpoint to agree with the sequential
           answer). *)
        purge_and_propagate ~trigger:"flush" ()
  in
  let save () =
    let module W = Streams.Wire.W in
    let b = Buffer.create 4096 in
    W.u8 b 1;
    Operator.write_stats b !stats;
    W.int b !now;
    W.int b !pending_puncts;
    W.option W.int b !pending_since;
    Array.iter
      (fun slot ->
        Join_state.write_snapshot b slot.state;
        Punct_store.write_snapshot b slot.puncts)
      slots;
    Buffer.contents b
  in
  let load blob =
    let module R = Streams.Wire.R in
    let r = R.of_string blob in
    let v = R.u8 r in
    if v <> 1 then
      raise
        (Streams.Wire.Corrupt
           (Printf.sprintf "Mjoin snapshot version %d, expected 1" v));
    let st = Operator.read_stats r in
    let n = R.int r in
    let pp = R.int r in
    let ps = R.option R.int r in
    Array.iter
      (fun slot ->
        Join_state.read_snapshot slot.state r;
        Punct_store.read_snapshot slot.puncts r)
      slots;
    R.expect_end r;
    stats := st;
    now := n;
    pending_puncts := pp;
    pending_since := ps
  in
  {
    Operator.name;
    out_schema;
    input_names = names;
    push;
    push_batch;
    flush;
    data_state_size =
      (fun () ->
        Array.fold_left (fun acc s -> acc + Join_state.size s.state) 0 slots);
    punct_state_size =
      (fun () ->
        Array.fold_left (fun acc s -> acc + Punct_store.size s.puncts) 0 slots);
    index_state_size =
      (fun () ->
        Array.fold_left
          (fun acc s -> acc + Join_state.index_entries s.state)
          0 slots);
    state_bytes =
      (fun () ->
        Array.fold_left
          (fun acc s ->
            acc + (Join_state.mem_stats s.state).Join_state.approx_bytes)
          0 slots);
    stats =
      (* The store-level conservation counters are folded in on read so the
         hot path stays untouched: arrivals the store rejected count as
         dropped, stored entries displaced by a subsuming insert count as
         purged. *)
      (fun () ->
        let dropped =
          Array.fold_left
            (fun acc s -> acc + Punct_store.rejected_count s.puncts)
            0 slots
        in
        let subsumed =
          Array.fold_left
            (fun acc s -> acc + Punct_store.subsumed_count s.puncts)
            0 slots
        in
        {
          !stats with
          puncts_dropped = dropped;
          puncts_purged = !stats.puncts_purged + subsumed;
        });
    persistence = Operator.Snapshot { save; load };
  }
