(** The punctuation-proven outer-join family: LEFT / RIGHT / FULL OUTER and
    ANTI semantics over two punctuated streams.

    The paper's safety theory decides when a purge is *sound*; this
    operator runs on the dual reading of the same proof obligation — a
    punctuation showing that {e no partner can ever arrive} is exactly what
    licenses emitting an unmatched-side result. Over infinite streams none
    of these variants is computable without punctuations ("no match will
    ever arrive" is unknowable), which makes them the sharpest showcase of
    punctuation semantics: where LQR-style engines time unmatched emission
    out heuristically, here a tuple is released exactly when
    {!Punct_store.covers} proves its matchlessness.

    Semantics per variant ([left] is the first input):
    - [Left]: inner matches stream out as in a symmetric hash join; a left
      tuple whose join values are covered by right punctuations while it
      never matched is emitted null-padded on the right attributes.
    - [Right]: the mirror image.
    - [Full]: both sides are preserved.
    - [Anti]: the anti semi-join — only the provably matchless left tuples
      are emitted (projected onto the left schema, no padding); inner
      matches produce nothing and disqualify pending left tuples.

    Null join keys follow PR 5's rules: SQL equality never accepts Null, so
    a null-keyed tuple of a preserved side is provably matchless {e on
    arrival} (emitted immediately); on the other side it is dropped.
    Null-padded outputs typecheck because [Value.Null] inhabits every
    column type.

    Accounting: [tuples_purged] counts only tuples that were stored and
    then removed without producing output — released unmatched results are
    tracked by {!Obs.Event.Unmatched} events and the
    [<op>.unmatched_tuples] counter instead, and never-stored arrivals
    (dead on arrival, null keys, matched anti tuples) count as neither, so
    trace replay reproduces every counter exactly.

    Punctuation forwarding is *held*: an input punctuation is forwarded
    (lifted to the output schema) only once no stored tuple of its side
    matches it — otherwise a later release or join of such a tuple would be
    late data contradicting the forwarded promise. On a side whose output
    attributes can be null-padded, ordered (watermark) punctuations are
    consumed rather than forwarded, since [Null] sorts below every value.
    The anti join forwards left punctuations only (its output is a
    sub-stream of the left input).

    Purging is always eager — punctuation-proven emission has to examine
    every informative punctuation anyway, so there is no lazy cadence to
    exploit. [flush] treats end-of-stream as a universal punctuation:
    every pending tuple is released as an unmatched result, remaining
    state is purged, and held punctuations are forwarded. *)

type semantics = Left | Right | Full | Anti

val pp_semantics : Format.formatter -> semantics -> unit

(** One input of the operator (same shape as {!Sym_hash_join.side}). *)
type side = {
  name : string;
  schema : Relational.Schema.t;
  schemes : Streams.Scheme.t list;
}

(** [create ~semantics ~left ~right ~predicates ()] — [predicates] atoms
    must all link the two inputs (conjunctive equi-join condition).

    The output schema is [left ++ right] with qualified attribute names for
    the outer variants, and the left schema renamed to the operator for
    [Anti].

    @raise Invalid_argument on identical input names, an empty predicate,
    or an atom not between the two inputs. *)
val create :
  ?name:string ->
  ?telemetry:Telemetry.t ->
  ?contract:Contract.t ->
  semantics:semantics ->
  left:side ->
  right:side ->
  predicates:Relational.Predicate.t ->
  unit ->
  Operator.t
