type sample = {
  tick : int;
  data_state : int;
  punct_state : int;
  index_state : int;
  state_bytes : int;
  emitted : int;
}

type t = { sample_every : int; mutable samples : sample list (* reversed *) }

let create ?(sample_every = 100) () = { sample_every; samples = [] }

let force t ~tick ~data_state ~punct_state ?(index_state = 0)
    ?(state_bytes = 0) ~emitted () =
  t.samples <-
    { tick; data_state; punct_state; index_state; state_bytes; emitted }
    :: t.samples

let observe t ~tick ~data_state ~punct_state ?(index_state = 0)
    ?(state_bytes = 0) ~emitted () =
  if tick mod t.sample_every = 0 then
    force t ~tick ~data_state ~punct_state ~index_state ~state_bytes ~emitted
      ()

(* Ticks start at 1, so a run shorter than [sample_every] never lands on the
   sampling grid: without a flush the series would be empty and final/peak_*
   would mislead. [flush] records the closing sample exactly once — a
   same-tick sample from [observe] is replaced (a final purge round may
   have shrunk the state since), never duplicated. *)
let flush t ~tick ~data_state ~punct_state ?(index_state = 0)
    ?(state_bytes = 0) ~emitted () =
  (match t.samples with
  | { tick = last; _ } :: rest when last = tick -> t.samples <- rest
  | _ -> ());
  force t ~tick ~data_state ~punct_state ~index_state ~state_bytes ~emitted ()

let samples t = List.rev t.samples

(* Samples are flat integer records, so structural equality is the right
   notion: two runs recorded the same series iff this holds. *)
let equal a b = samples a = samples b

let peak_data_state t =
  List.fold_left (fun acc s -> max acc s.data_state) 0 t.samples

let peak_punct_state t =
  List.fold_left (fun acc s -> max acc s.punct_state) 0 t.samples

let peak_index_state t =
  List.fold_left (fun acc s -> max acc s.index_state) 0 t.samples

let peak_state_bytes t =
  List.fold_left (fun acc s -> max acc s.state_bytes) 0 t.samples

let final t = match t.samples with [] -> None | s :: _ -> Some s

(* Least-squares slope of [field] against the tick over the second half of
   the run: ≈ 0 when bounded, > 0 when the series grows without bound.
   Degenerate windows — empty, a single sample, or samples all landing on
   one tick (repeated [force] at the same clock) — have no defined slope
   and answer 0 rather than dividing by a vanishing variance. *)
let slope_of field t =
  let all = samples t in
  let n = List.length all in
  let tail = List.filteri (fun i _ -> i >= n / 2) all in
  match tail with
  | [] | [ _ ] -> 0.0
  | first :: rest when List.for_all (fun s -> s.tick = first.tick) rest -> 0.0
  | _ ->
      let m = float_of_int (List.length tail) in
      let sx = List.fold_left (fun a s -> a +. float_of_int s.tick) 0.0 tail in
      let sy =
        List.fold_left (fun a s -> a +. float_of_int (field s)) 0.0 tail
      in
      let sxx =
        List.fold_left
          (fun a s -> a +. (float_of_int s.tick *. float_of_int s.tick))
          0.0 tail
      in
      let sxy =
        List.fold_left
          (fun a s -> a +. (float_of_int s.tick *. float_of_int (field s)))
          0.0 tail
      in
      let denom = (m *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-9 then 0.0
      else ((m *. sxy) -. (sx *. sy)) /. denom

let growth_slope t = slope_of (fun s -> s.data_state) t
let index_growth_slope t = slope_of (fun s -> s.index_state) t

let pp_series ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf s ->
         Fmt.pf ppf
           "tick %6d  state %6d  index %6d  ~bytes %8d  puncts %5d  emitted \
            %6d"
           s.tick s.data_state s.index_state s.state_bytes s.punct_state
           s.emitted))
    (samples t)
