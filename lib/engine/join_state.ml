open Relational

module Key = struct
  type t = Value.t list

  let equal a b = List.compare Value.compare a b = 0
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

(* Bucket storage per index. The generic representation keys buckets by the
   raw projected [Value.t list]; the specialized one unboxes the common
   single-attribute Int key so the hot probe path hashes a native int
   instead of a boxed heterogeneous list. Chosen once at index-build time
   from the schema's attribute type.

   Null join keys are never stored in either representation and probing
   with a Null returns nothing: [Key.equal] (via [Value.compare]) would
   otherwise match Null = Null while [Predicate.eval] (via [Value.equal])
   rejects it, making the answer depend on which atom the probe order
   happened to pick as the hash key. SQL semantics — a null key matches
   nothing — is the one both paths can agree on (see {!Value.compare}). *)
type buckets =
  | Generic of int list ref KeyTbl.t
  | Int1 of (int, int list ref) Hashtbl.t

type index = {
  attrs : int list;
  buckets : buckets;
  mutable entries : int;  (** total ids across all buckets (kept exact) *)
}

type handle = index

type t = {
  schema : Schema.t;
  live : (int, int * Tuple.t) Hashtbl.t;  (** id -> (insertion tick, tuple) *)
  mutable indexes : index list;
  mutable next_id : int;
}

type mem_stats = {
  live_tuples : int;
  index_entries : int;
  buckets : int;
  indexes : int;
  approx_bytes : int;
}

let create schema =
  { schema; live = Hashtbl.create 64; indexes = []; next_id = 0 }

let schema t = t.schema

let index_insert (idx : index) id tup =
  match idx.buckets with
  | Int1 tbl -> (
      match Tuple.get tup (List.hd idx.attrs) with
      | Value.Int k ->
          (match Hashtbl.find_opt tbl k with
          | Some ids -> ids := id :: !ids
          | None -> Hashtbl.add tbl k (ref [ id ]));
          idx.entries <- idx.entries + 1
      | _ ->
          (* Null (or an out-of-type value, impossible for validated
             tuples): not indexable, the tuple can never be a probe hit. *)
          ())
  | Generic tbl ->
      let key = Tuple.project tup idx.attrs in
      if not (List.exists Value.is_null key) then begin
        (match KeyTbl.find_opt tbl key with
        | Some ids -> ids := id :: !ids
        | None -> KeyTbl.add tbl key (ref [ id ]));
        idx.entries <- idx.entries + 1
      end

let insert ?tick t tup =
  if not (Schema.equal (Tuple.schema tup) t.schema) then
    invalid_arg "Join_state.insert: schema mismatch";
  let id = t.next_id in
  t.next_id <- id + 1;
  let tick = match tick with Some k -> k | None -> id in
  Hashtbl.replace t.live id (tick, tup);
  List.iter (fun idx -> index_insert idx id tup) t.indexes

(* Eagerly drop [victims] (already removed from [live]) from every index:
   one pass over the affected buckets, emptied buckets are deleted so the
   key table cannot accumulate keys the stream will never repeat. *)
let remove_from_indexes (t : t) victims =
  if victims <> [] then
    match t.indexes with
    | [] -> ()
    | indexes ->
        let dead = Hashtbl.create (2 * List.length victims) in
        List.iter (fun (id, _) -> Hashtbl.replace dead id ()) victims;
        let compact idx remove ids =
          let keep = List.filter (fun id -> not (Hashtbl.mem dead id)) !ids in
          idx.entries <- idx.entries - (List.length !ids - List.length keep);
          if keep = [] then remove () else ids := keep
        in
        List.iter
          (fun (idx : index) ->
            match idx.buckets with
            | Int1 tbl ->
                let attr = List.hd idx.attrs in
                let touched = Hashtbl.create 16 in
                List.iter
                  (fun (_, tup) ->
                    match Tuple.get tup attr with
                    | Value.Int k -> Hashtbl.replace touched k ()
                    | _ -> ())
                  victims;
                Hashtbl.iter
                  (fun k () ->
                    match Hashtbl.find_opt tbl k with
                    | None -> ()
                    | Some ids ->
                        compact idx (fun () -> Hashtbl.remove tbl k) ids)
                  touched
            | Generic tbl ->
                let touched = KeyTbl.create 16 in
                List.iter
                  (fun (_, tup) ->
                    let key = Tuple.project tup idx.attrs in
                    if not (List.exists Value.is_null key) then
                      KeyTbl.replace touched key ())
                  victims;
                KeyTbl.iter
                  (fun key () ->
                    match KeyTbl.find_opt tbl key with
                    | None -> ()
                    | Some ids ->
                        compact idx (fun () -> KeyTbl.remove tbl key) ids)
                  touched)
          indexes

let remove_victims t victims =
  List.iter (fun (id, _) -> Hashtbl.remove t.live id) victims;
  remove_from_indexes t victims;
  List.length victims

let evict_before t ~tick =
  let victims =
    Hashtbl.fold
      (fun id (k, tup) acc -> if k < tick then (id, tup) :: acc else acc)
      t.live []
  in
  remove_victims t victims

(* Deterministic age-ordered eviction for load shedding: victims are the
   [count] oldest live tuples by (insertion tick, insertion id) — a total
   order, so two incarnations of the same state shed the same tuples
   regardless of hash-table iteration order. *)
let evict_oldest t ~count =
  if count <= 0 then 0
  else begin
    let all =
      Hashtbl.fold (fun id (k, tup) acc -> (k, id, tup) :: acc) t.live []
    in
    let sorted =
      List.sort
        (fun (k1, i1, _) (k2, i2, _) -> compare (k1, i1) (k2, i2))
        all
    in
    let victims =
      List.filteri (fun i _ -> i < count) sorted
      |> List.map (fun (_, id, tup) -> (id, tup))
    in
    remove_victims t victims
  end

let size t = Hashtbl.length t.live
let insertions t = t.next_id

let build_index t attrs =
  let buckets =
    match attrs with
    | [ a ] when (Schema.attr_at t.schema a).Schema.ty = Value.TInt ->
        Int1 (Hashtbl.create 64)
    | _ -> Generic (KeyTbl.create 64)
  in
  let idx = { attrs; buckets; entries = 0 } in
  Hashtbl.iter (fun id (_, tup) -> index_insert idx id tup) t.live;
  t.indexes <- idx :: t.indexes;
  idx

let find_or_build_index (t : t) attrs =
  match List.find_opt (fun i -> i.attrs = attrs) t.indexes with
  | Some i -> i
  | None -> build_index t attrs

let index_on t ~attr = find_or_build_index t [ attr ]

(* Purge maintains the indexes eagerly, so every id should be live; keep
   the compaction as a defensive sweep and never leave an empty bucket
   behind. *)
let bucket_tuples (t : t) (idx : index) remove ids =
  let alive =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.live id with
        | Some (_, tup) -> Some (id, tup)
        | None -> None)
      !ids
  in
  idx.entries <- idx.entries - (List.length !ids - List.length alive);
  if alive = [] then remove () else ids := List.map fst alive;
  List.map snd alive

(* Tick-carrying twin of [bucket_tuples], for the instrumented probe path
   (result-latency spans need the arrival tick of every matched tuple).
   Kept separate so the uninstrumented hot path pays nothing. *)
let bucket_entries (t : t) (idx : index) remove ids =
  let alive =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.live id with
        | Some (tick, tup) -> Some (id, tick, tup)
        | None -> None)
      !ids
  in
  idx.entries <- idx.entries - (List.length !ids - List.length alive);
  if alive = [] then remove ()
  else ids := List.map (fun (id, _, _) -> id) alive;
  List.map (fun (_, tick, tup) -> (tick, tup)) alive

let probe_index (t : t) (idx : index) values =
  if List.exists Value.is_null values then []
  else
    match idx.buckets, values with
    | Int1 tbl, [ Value.Int k ] -> (
        match Hashtbl.find_opt tbl k with
        | None -> []
        | Some ids -> bucket_tuples t idx (fun () -> Hashtbl.remove tbl k) ids)
    | Int1 _, _ ->
        (* probing an Int-typed column with a non-Int value: by typing it
           cannot be stored here, so there is nothing to match *)
        []
    | Generic tbl, key -> (
        match KeyTbl.find_opt tbl key with
        | None -> []
        | Some ids ->
            bucket_tuples t idx (fun () -> KeyTbl.remove tbl key) ids)

let probe (t : t) ~attrs values = probe_index t (find_or_build_index t attrs) values

(* Handle-based probe for compiled probe programs: the index was resolved
   once at plan time, so the per-probe index search disappears and the
   single-value common case skips the key-list allocation entirely. *)
let probe_handle (t : t) (idx : index) v =
  match idx.buckets with
  | Int1 tbl -> (
      match v with
      | Value.Int k -> (
          match Hashtbl.find_opt tbl k with
          | None -> []
          | Some ids ->
              bucket_tuples t idx (fun () -> Hashtbl.remove tbl k) ids)
      | _ -> [])
  | Generic _ -> probe_index t idx [ v ]

let probe_entries_index (t : t) (idx : index) values =
  if List.exists Value.is_null values then []
  else
    match idx.buckets, values with
    | Int1 tbl, [ Value.Int k ] -> (
        match Hashtbl.find_opt tbl k with
        | None -> []
        | Some ids -> bucket_entries t idx (fun () -> Hashtbl.remove tbl k) ids)
    | Int1 _, _ -> []
    | Generic tbl, key -> (
        match KeyTbl.find_opt tbl key with
        | None -> []
        | Some ids ->
            bucket_entries t idx (fun () -> KeyTbl.remove tbl key) ids)

let probe_entries (t : t) ~attrs values =
  probe_entries_index t (find_or_build_index t attrs) values

let probe_entries_handle (t : t) (idx : index) v =
  match idx.buckets with
  | Int1 tbl -> (
      match v with
      | Value.Int k -> (
          match Hashtbl.find_opt tbl k with
          | None -> []
          | Some ids ->
              bucket_entries t idx (fun () -> Hashtbl.remove tbl k) ids)
      | _ -> [])
  | Generic _ -> probe_entries_index t idx [ v ]

let iter f t = Hashtbl.iter (fun _ (_, tup) -> f tup) t.live
let fold f init t = Hashtbl.fold (fun _ (_, tup) acc -> f acc tup) t.live init

let fold_entries f init t =
  Hashtbl.fold (fun _ (tick, tup) acc -> f acc tick tup) t.live init

let to_relation t = Relation.make t.schema (fold (fun acc x -> x :: acc) [] t)

let purge_if t pred =
  let victims =
    Hashtbl.fold
      (fun id (_, tup) acc -> if pred tup then (id, tup) :: acc else acc)
      t.live []
  in
  remove_victims t victims

let exists_matching t p =
  let exception Found in
  try
    iter (fun tup -> if Streams.Punctuation.matches p tup then raise Found) t;
    false
  with Found -> true

(* --- serialization ------------------------------------------------------ *)

module Wire = Streams.Wire

let snapshot_version = 1

(* Live entries ascending by id, then the attr lists of every index. The
   tuples themselves carry no schema — the reader restores into a state
   compiled from the same plan. *)
let write_snapshot b (t : t) =
  Wire.W.u8 b snapshot_version;
  Wire.W.int b t.next_id;
  let entries =
    Hashtbl.fold (fun id (tick, tup) acc -> (id, tick, tup) :: acc) t.live []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Wire.W.list
    (fun b (id, tick, tup) ->
      Wire.W.int b id;
      Wire.W.int b tick;
      Wire.write_tuple b tup)
    b entries;
  Wire.W.list (Wire.W.list Wire.W.int) b
    (List.map (fun (idx : index) -> idx.attrs) t.indexes)

let clear_index (idx : index) =
  (match idx.buckets with
  | Int1 tbl -> Hashtbl.reset tbl
  | Generic tbl -> KeyTbl.reset tbl);
  idx.entries <- 0

(* In-place restore: compiled probe programs hold resolved {!handle}s into
   this state's index records, so the records are kept and refilled, never
   replaced. Entries are reinserted in ascending id order — the order the
   original inserts arrived in — so each bucket's id list (prepend on
   insert ⇒ newest first) is reproduced exactly and probe output order is
   deterministic across a restore. Indexes the snapshot had beyond the
   compiled ones (built on demand by earlier probes) are recreated empty
   and filled by the same pass. *)
let read_snapshot (t : t) r =
  let v = Wire.R.u8 r in
  if v <> snapshot_version then
    raise
      (Wire.Corrupt
         (Printf.sprintf "Join_state snapshot version %d, expected %d" v
            snapshot_version));
  let next_id = Wire.R.int r in
  let entries =
    Wire.R.list
      (fun r ->
        let id = Wire.R.int r in
        let tick = Wire.R.int r in
        let tup = Wire.read_tuple ~schema:t.schema r in
        (id, tick, tup))
      r
  in
  let index_attrs = Wire.R.list (Wire.R.list Wire.R.int) r in
  Hashtbl.reset t.live;
  t.next_id <- next_id;
  List.iter (fun idx -> clear_index idx) t.indexes;
  List.iter
    (fun attrs ->
      if not (List.exists (fun (i : index) -> i.attrs = attrs) t.indexes)
      then
        let buckets =
          match attrs with
          | [ a ] when (Schema.attr_at t.schema a).Schema.ty = Value.TInt ->
              Int1 (Hashtbl.create 64)
          | _ -> Generic (KeyTbl.create 64)
        in
        t.indexes <- { attrs; buckets; entries = 0 } :: t.indexes)
    index_attrs;
  List.iter
    (fun (id, tick, tup) ->
      Hashtbl.replace t.live id (tick, tup);
      List.iter (fun idx -> index_insert idx id tup) t.indexes)
    entries

(* --- memory accounting ------------------------------------------------- *)

let index_entries (t : t) =
  List.fold_left (fun acc idx -> acc + idx.entries) 0 t.indexes

let buckets_in = function
  | Int1 tbl -> Hashtbl.length tbl
  | Generic tbl -> KeyTbl.length tbl

let bucket_count (t : t) =
  List.fold_left (fun acc (idx : index) -> acc + buckets_in idx.buckets) 0 t.indexes

let mem_stats (t : t) =
  let live_tuples = Hashtbl.length t.live in
  (* Per live tuple: the (tick, tuple) pair, the tuple block and one boxed
     value per attribute, plus a hash-table slot. Per index entry: a list
     cell. Per bucket: the ref, the key list and its boxed values, plus a
     table slot. A deliberate estimate ({!Mem_estimate}) — the point is the
     trend, not the exact byte. *)
  let tuple_bytes = Mem_estimate.tuple_bytes t.schema in
  let entry_bytes = Mem_estimate.list_cell_bytes in
  let buckets = bucket_count t in
  let bucket_bytes (idx : index) =
    Mem_estimate.table_entry_bytes ~width:(List.length idx.attrs)
    * buckets_in idx.buckets
  in
  let approx_bytes =
    (live_tuples * tuple_bytes)
    + (index_entries t * entry_bytes)
    + List.fold_left (fun acc idx -> acc + bucket_bytes idx) 0 t.indexes
  in
  {
    live_tuples;
    index_entries = index_entries t;
    buckets;
    indexes = List.length t.indexes;
    approx_bytes;
  }
