open Relational

module Key = struct
  type t = Value.t list

  let equal a b = List.compare Value.compare a b = 0
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

type index = {
  attrs : int list;
  buckets : int list ref KeyTbl.t;
  mutable entries : int;  (** total ids across all buckets (kept exact) *)
}

type t = {
  schema : Schema.t;
  live : (int, int * Tuple.t) Hashtbl.t;  (** id -> (insertion tick, tuple) *)
  mutable indexes : index list;
  mutable next_id : int;
}

type mem_stats = {
  live_tuples : int;
  index_entries : int;
  buckets : int;
  indexes : int;
  approx_bytes : int;
}

let create schema =
  { schema; live = Hashtbl.create 64; indexes = []; next_id = 0 }

let schema t = t.schema

let index_insert idx id tup =
  let key = Tuple.project tup idx.attrs in
  (match KeyTbl.find_opt idx.buckets key with
  | Some ids -> ids := id :: !ids
  | None -> KeyTbl.add idx.buckets key (ref [ id ]));
  idx.entries <- idx.entries + 1

let insert ?tick t tup =
  if not (Schema.equal (Tuple.schema tup) t.schema) then
    invalid_arg "Join_state.insert: schema mismatch";
  let id = t.next_id in
  t.next_id <- id + 1;
  let tick = match tick with Some k -> k | None -> id in
  Hashtbl.replace t.live id (tick, tup);
  List.iter (fun idx -> index_insert idx id tup) t.indexes

(* Eagerly drop [victims] (already removed from [live]) from every index:
   one pass over the affected buckets, emptied buckets are deleted so the
   key table cannot accumulate keys the stream will never repeat. *)
let remove_from_indexes (t : t) victims =
  if victims <> [] then
    match t.indexes with
    | [] -> ()
    | indexes ->
        let dead = Hashtbl.create (2 * List.length victims) in
        List.iter (fun (id, _) -> Hashtbl.replace dead id ()) victims;
        List.iter
          (fun idx ->
            let touched = KeyTbl.create 16 in
            List.iter
              (fun (_, tup) ->
                let key = Tuple.project tup idx.attrs in
                if not (KeyTbl.mem touched key) then KeyTbl.add touched key ())
              victims;
            KeyTbl.iter
              (fun key () ->
                match KeyTbl.find_opt idx.buckets key with
                | None -> ()
                | Some ids ->
                    let keep =
                      List.filter (fun id -> not (Hashtbl.mem dead id)) !ids
                    in
                    idx.entries <-
                      idx.entries - (List.length !ids - List.length keep);
                    if keep = [] then KeyTbl.remove idx.buckets key
                    else ids := keep)
              touched)
          indexes

let remove_victims t victims =
  List.iter (fun (id, _) -> Hashtbl.remove t.live id) victims;
  remove_from_indexes t victims;
  List.length victims

let evict_before t ~tick =
  let victims =
    Hashtbl.fold
      (fun id (k, tup) acc -> if k < tick then (id, tup) :: acc else acc)
      t.live []
  in
  remove_victims t victims

let size t = Hashtbl.length t.live
let insertions t = t.next_id

let build_index t attrs =
  let idx = { attrs; buckets = KeyTbl.create 64; entries = 0 } in
  Hashtbl.iter (fun id (_, tup) -> index_insert idx id tup) t.live;
  t.indexes <- idx :: t.indexes;
  idx

let probe (t : t) ~attrs values =
  let idx =
    match List.find_opt (fun i -> i.attrs = attrs) t.indexes with
    | Some i -> i
    | None -> build_index t attrs
  in
  match KeyTbl.find_opt idx.buckets values with
  | None -> []
  | Some ids ->
      (* Purge maintains the indexes eagerly, so every id should be live;
         keep the compaction as a defensive sweep and never leave an empty
         bucket behind. *)
      let alive =
        List.filter_map
          (fun id ->
            match Hashtbl.find_opt t.live id with
            | Some (_, tup) -> Some (id, tup)
            | None -> None)
          !ids
      in
      idx.entries <- idx.entries - (List.length !ids - List.length alive);
      if alive = [] then KeyTbl.remove idx.buckets values
      else ids := List.map fst alive;
      List.map snd alive

let iter f t = Hashtbl.iter (fun _ (_, tup) -> f tup) t.live
let fold f init t = Hashtbl.fold (fun _ (_, tup) acc -> f acc tup) t.live init

let to_relation t = Relation.make t.schema (fold (fun acc x -> x :: acc) [] t)

let purge_if t pred =
  let victims =
    Hashtbl.fold
      (fun id (_, tup) acc -> if pred tup then (id, tup) :: acc else acc)
      t.live []
  in
  remove_victims t victims

let exists_matching t p =
  let exception Found in
  try
    iter (fun tup -> if Streams.Punctuation.matches p tup then raise Found) t;
    false
  with Found -> true

(* --- memory accounting ------------------------------------------------- *)

let index_entries (t : t) =
  List.fold_left (fun acc idx -> acc + idx.entries) 0 t.indexes

let bucket_count (t : t) =
  List.fold_left
    (fun acc (idx : index) -> acc + KeyTbl.length idx.buckets)
    0 t.indexes

let mem_stats (t : t) =
  let live_tuples = Hashtbl.length t.live in
  (* Per live tuple: the (tick, tuple) pair, the tuple block and one boxed
     value per attribute, plus a hash-table slot. Per index entry: a list
     cell. Per bucket: the ref, the key list and its boxed values, plus a
     table slot. A deliberate estimate ({!Mem_estimate}) — the point is the
     trend, not the exact byte. *)
  let tuple_bytes = Mem_estimate.tuple_bytes t.schema in
  let entry_bytes = Mem_estimate.list_cell_bytes in
  let buckets = bucket_count t in
  let bucket_bytes (idx : index) =
    Mem_estimate.table_entry_bytes ~width:(List.length idx.attrs)
    * KeyTbl.length idx.buckets
  in
  let approx_bytes =
    (live_tuples * tuple_bytes)
    + (index_entries t * entry_bytes)
    + List.fold_left (fun acc idx -> acc + bucket_bytes idx) 0 t.indexes
  in
  {
    live_tuples;
    index_entries = index_entries t;
    buckets;
    indexes = List.length t.indexes;
    approx_bytes;
  }
