(** Punctuation-aligned checkpointing: consistent cuts of a sharded run,
    taken at the {!Parallel_executor} quiesce barrier (workers parked, every
    queue drained, operator state provably the bounded live set), plus the
    durable file format behind [--checkpoint-dir] / [--resume].

    A checkpoint owns everything before the cut: per-shard operator
    snapshot blobs ({!Operator.persistence}), per-shard emit counters, the
    outputs drained so far, and the input position. After a successful
    checkpoint the executor truncates each shard's replay history to the
    suffix since the cut, so crash recovery replays at most one checkpoint
    interval of input. *)

exception Invalid of string
(** A checkpoint that must not be restored: bad magic, version mismatch,
    CRC failure, truncation, or a run-configuration fingerprint that does
    not match. Raised by {!decode} / {!load_latest}; [pstream_run --resume]
    maps it to exit code 6. *)

type config = { every : int; dir : string option; fingerprint : string }
(** Take a checkpoint every [every]-th sampling-grid barrier; when [dir]
    is set, also persist each one durably there, stamped with
    [fingerprint] (see {!fingerprint}). *)

val config : ?dir:string -> ?fingerprint:string -> every:int -> unit -> config
(** @raise Invalid_argument on a non-positive interval. *)

type shard = {
  ops : (string * string) list;  (** operator name -> snapshot blob *)
  emitted : int;  (** data tuples emitted by the shard before the cut *)
  out_rank : int;  (** per-shard output sequence position at the cut *)
}

type t = {
  barrier : int;  (** quiesce-barrier id of the cut *)
  consumed : int;  (** input elements consumed before the cut *)
  shards : shard array;
  committed : (int * int * int * Streams.Element.t) list;
      (** (input seq, shard, rank, element) outputs drained from the shards
          and owned by the cut, ascending *)
}

(** [fingerprint kvs] — digest of the run configuration (query text,
    policy, shard count, grid spacing, workload parameters). Stored in each
    checkpoint file and required to match on resume, since resume replays
    the trace regenerated from the same arguments. *)
val fingerprint : (string * string) list -> string

(** [encode ~fingerprint t] — the durable byte representation: magic,
    version, fingerprint, length-prefixed payload, raw 16-byte payload
    digest. *)
val encode : fingerprint:string -> t -> string

(** [decode ~fingerprint ~schema s] — strict inverse of {!encode};
    [schema] is the plan's output schema (committed elements are stored
    schema-less).
    @raise Invalid on any mismatch — never returns a partial checkpoint. *)
val decode : fingerprint:string -> schema:Relational.Schema.t -> string -> t

(** [save ~dir ~fingerprint t] — durably persist [t] under [dir] (created
    if missing): write to a temp sibling, fsync, atomically rename to
    [ckpt-<barrier>.bin], then drop all but the two most recent files.
    Returns [(path, bytes)]. *)
val save : dir:string -> fingerprint:string -> t -> string * int

(** [load_latest ~dir ~fingerprint ~schema] — decode the most recent
    checkpoint file in [dir].
    @raise Invalid when the dir is missing/empty or the newest file fails
    any {!decode} check (no silent fallback to older files: a bad newest
    checkpoint is a loud error, not a quiet rewind). *)
val load_latest :
  dir:string -> fingerprint:string -> schema:Relational.Schema.t -> t

(** Commutative constant-space digest of an output multiset, rendering
    data tuples exactly as {!Executor.output_hash} does — the soak harness
    compares a kill-storm run to a fault-free one without retaining either
    run's outputs. *)
module Rolling : sig
  type h

  val create : unit -> h

  (** [add_rendering h s] folds one {!Executor.render_data} rendering in. *)
  val add_rendering : h -> string -> unit

  val count : h -> int
  val digest : h -> string
end
