(** Execution metrics: state-size time series and aggregate counters.

    The operational content of the paper's safety notion is visible here: a
    safe plan's [data_state] series plateaus, an unsafe one's grows without
    bound. Since this PR the series also tracks [index_state] (secondary
    index entries) and [state_bytes] (approximate resident bytes), so a
    purge path that forgets to clean the indexes shows up as an
    [index_state] series growing away from [data_state]. Benches print
    these series and `BENCH_bounded_state.json` persists them.

    Sampling contract: ticks are 1-based, and [observe] records only on
    ticks that are multiples of [sample_every] — a run shorter than
    [sample_every] records nothing through [observe] alone. Finish every
    run with [flush] (as {!Executor.run} does) so the series always carries
    a closing sample; [final] and the [peak_*] accessors are only
    meaningful after that. *)

type sample = {
  tick : int;  (** elements consumed so far *)
  data_state : int;  (** stored tuples across all join states *)
  punct_state : int;  (** stored punctuations across all stores *)
  index_state : int;  (** secondary-index entries across all join states *)
  state_bytes : int;  (** approximate resident bytes of the join states *)
  emitted : int;  (** result tuples emitted so far *)
}

type t

val create : ?sample_every:int -> unit -> t

(** [observe t ~tick ...] records a sample when [tick] falls on the
    sampling grid (multiples of [sample_every]; ticks are 1-based). *)
val observe :
  t ->
  tick:int ->
  data_state:int ->
  punct_state:int ->
  ?index_state:int ->
  ?state_bytes:int ->
  emitted:int ->
  unit ->
  unit

(** [force t ...] records unconditionally. *)
val force :
  t ->
  tick:int ->
  data_state:int ->
  punct_state:int ->
  ?index_state:int ->
  ?state_bytes:int ->
  emitted:int ->
  unit ->
  unit

(** [flush t ...] records the closing sample; a same-tick sample recorded
    by [observe] is replaced rather than duplicated (a duplicate final
    point would bias {!growth_slope}, and the pre-flush values miss the
    effect of the final purge round). *)
val flush :
  t ->
  tick:int ->
  data_state:int ->
  punct_state:int ->
  ?index_state:int ->
  ?state_bytes:int ->
  emitted:int ->
  unit ->
  unit

val samples : t -> sample list

(** [equal a b] — same recorded samples, tick for tick. Under the eager
    purge policy a sharded run's barrier-sampled series must equal the
    sequential series; this is the check. *)
val equal : t -> t -> bool

val peak_data_state : t -> int
val peak_punct_state : t -> int
val peak_index_state : t -> int
val peak_state_bytes : t -> int
val final : t -> sample option

(** [growth_slope t] — least-squares slope of [data_state] against [tick]
    over the second half of the run: ≈ 0 for bounded state, > 0 for
    unbounded growth. *)
val growth_slope : t -> float

(** [index_growth_slope t] — the same slope for [index_state]; this is the
    series that exposed the pre-fix index leak (slope > 0 while
    [growth_slope] ≈ 0). *)
val index_growth_slope : t -> float

val pp_series : Format.formatter -> t -> unit
