(** The engine's handle into the [Obs] telemetry library.

    One value of {!t} is shared by an executor tree and every operator in
    it: operators emit {!Obs.Event.t}s and record counters/histograms
    through it, the executor stamps the global element clock and feeds the
    watchdog. The default handle is {!null}, which is disabled: no events
    are constructed, no counters written, and a run is behaviour-identical
    to an uninstrumented one (asserted by a test).

    Naming convention, shared with {!Obs.Report.replay}: counters and
    histograms are ["<operator>.<metric>"], e.g. [J1.tuples_in],
    [J1.push_ns], [J1.purge_lag]. *)

type t

(** Disabled handle: every recording operation is a no-op. *)
val null : t

(** [create ?sink ?watchdog ?time_ns ()] — an enabled handle. [sink]
    defaults to {!Obs.Sink.null} (counters and histograms still record —
    a registry without a trace is the common production mode). [time_ns]
    is the latency clock (monotonic preferred); the default derives
    nanoseconds from [Sys.time] (CPU time). *)
val create :
  ?sink:Obs.Sink.t ->
  ?watchdog:Obs.Watchdog.t ->
  ?time_ns:(unit -> int) ->
  unit ->
  t

val enabled : t -> bool
val registry : t -> Obs.Registry.t
val watchdog : t -> Obs.Watchdog.t option

(** Watchdog alarms raised so far (empty for {!null} or no watchdog). *)
val alarms : t -> Obs.Watchdog.alarm list

(** The executor's element clock: [now] is the tick stamped on events. *)
val now : t -> int

val set_clock : t -> int -> unit

(** [emit t e] — forward [e] to the sink (no-op when disabled). Callers
    should construct the event under an [enabled] guard so the disabled
    path allocates nothing. *)
val emit : t -> Obs.Event.t -> unit

val time_ns : t -> int

(** [incr ?by t name] / [observe ?n t name v] — registry writes; no-ops
    when disabled. *)
val incr : ?by:int -> t -> string -> unit

val observe : ?n:int -> t -> string -> int -> unit

(** [set_gauge ?agg t name v] — record gauge [name]'s current level with
    its cross-shard aggregation (see {!Obs.Counters.agg}); no-op when
    disabled. *)
val set_gauge : ?agg:Obs.Counters.agg -> t -> string -> int -> unit

(** [close t] — flush/close the sink. *)
val close : t -> unit

(** [wrap_op t op] — [op] with its [push]/[flush] wrapped to record
    per-operator ingress/egress counters, [Tuple_in]/[Punct_in]/
    [Tuple_out]/[Punct_out] events and the [<op>.push_ns] latency
    histogram. Returns [op] unchanged when [t] is disabled. *)
val wrap_op : t -> Operator.t -> Operator.t
