open Relational
module Element = Streams.Element
module Scheme = Streams.Scheme
module Stream_def = Streams.Stream_def
module Cjq = Query.Cjq
module Plan = Query.Plan
module Query_registry = Query.Query_registry
module Planner = Core.Planner
module Checker = Core.Checker

(* One compiled shared building block: a whole Executor tree (one join
   state, one punctuation store) whose root output doubles as a pseudo
   input stream for the subscribers' residual trees. *)
type group = {
  gid : string;
  gstreams : string list;
  gtree : Executor.compiled;
  pseudo : string;  (** stream name of the pseudo output *)
  pseudo_def : Stream_def.t;
}

type qunit = {
  qid : string;
  gid : string option;  (** subscribed shared group, if any *)
  qtree : Executor.compiled option;
      (** the residual (or independent) tree; [None] when the shared
          block covers the whole query *)
  reads : string list;  (** raw streams fed directly into [qtree] *)
}

type t = {
  reg : Query_registry.t;
  mplan : Planner.multi_plan;
  groups : group list;
  qunits : qunit list;
  config : Executor.Config.t;
  defs : Stream_def.t list;  (** union input surface *)
}

let plan t = t.mplan
let registry t = t.reg
let stream_defs t = t.defs

let union_defs queries =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun q ->
      List.filter_map
        (fun def ->
          let name = Stream_def.name def in
          match Hashtbl.find_opt seen name with
          | Some schema ->
              if not (Schema.equal schema (Stream_def.schema def)) then
                invalid_arg
                  (Printf.sprintf
                     "Multi_executor: stream %S declared with conflicting \
                      schemas"
                     name);
              None
          | None ->
              Hashtbl.add seen name (Stream_def.schema def);
              Some def)
        (Cjq.stream_defs q))
    queries

let compile_group config (g : Planner.shared_group) reg =
  let q0 = Query_registry.find reg (fst (List.hd g.Planner.group_members)) in
  let sub = Cjq.restrict q0 g.Planner.streams in
  (* The shared operator's declared schemes are the *intersection*: it
     must purge only on punctuations every subscriber guarantees. *)
  let intersection = g.Planner.report.Checker.intersection in
  let defs_sub =
    List.map
      (fun s ->
        Stream_def.make (Cjq.schema_of sub s)
          (Scheme.Set.for_stream intersection s))
      g.Planner.streams
  in
  let sub_query = Cjq.make defs_sub (Cjq.predicates sub) in
  let gconfig =
    {
      config with
      Executor.Config.op_prefix = "shared:" ^ g.Planner.gid ^ "/";
      contract = None;
    }
  in
  let gtree =
    Executor.compile ~config:gconfig sub_query (Plan.mjoin g.Planner.streams)
  in
  let out_schema = Executor.output_schema gtree in
  let pseudo = Schema.stream_name out_schema in
  {
    gid = g.Planner.gid;
    gstreams = g.Planner.streams;
    gtree;
    pseudo;
    pseudo_def = Stream_def.make out_schema (Executor.derived_schemes gtree);
  }

(* The subscriber's residual query: the shared block contracted to one
   pseudo stream. Atoms internal to the block were applied there; atoms
   crossing the boundary re-anchor their shared endpoint on the pseudo
   stream under its qualified column name. *)
let residual_query query (g : group) rest =
  let atoms =
    List.filter_map
      (fun a ->
        let s1, s2 = Predicate.streams_of a in
        let in1 = List.mem s1 g.gstreams and in2 = List.mem s2 g.gstreams in
        if in1 && in2 then None
        else if (not in1) && not in2 then Some a
        else
          let sin, ain, sout, aout =
            if in1 then (s1, Predicate.attr_on a s1, s2, Predicate.attr_on a s2)
            else (s2, Predicate.attr_on a s2, s1, Predicate.attr_on a s1)
          in
          Some
            (Predicate.atom g.pseudo
               (Schema.qualify_attr ~origin:sin ain)
               sout aout))
      (Cjq.predicates query)
  in
  let defs = g.pseudo_def :: List.map (Cjq.def query) rest in
  Cjq.make defs atoms

let create ?(config = Executor.Config.default) ?(share = true) reg =
  let entries = Query_registry.entries reg in
  let defs =
    union_defs (List.map (fun e -> e.Query_registry.query) entries)
  in
  let mplan = Planner.plan_shared ~share reg in
  let groups = List.map (fun g -> compile_group config g reg) mplan.groups in
  let group_of gid = List.find (fun (g : group) -> g.gid = gid) groups in
  let qunits =
    List.map
      (fun (qid, assignment) ->
        let query = Query_registry.find reg qid in
        let qconfig =
          {
            config with
            Executor.Config.op_prefix = qid ^ "/";
            contract = None;
          }
        in
        match assignment with
        | Planner.Independent plan ->
            {
              qid;
              gid = None;
              qtree = Some (Executor.compile ~config:qconfig query plan);
              reads = Cjq.stream_names query;
            }
        | Planner.Shared { gid; rest = [] } ->
            { qid; gid = Some gid; qtree = None; reads = [] }
        | Planner.Shared { gid; rest } ->
            let g = group_of gid in
            let rq = residual_query query g rest in
            let rplan = Plan.mjoin (g.pseudo :: rest) in
            {
              qid;
              gid = Some gid;
              qtree = Some (Executor.compile ~config:qconfig rq rplan);
              reads = rest;
            })
      mplan.assignments
  in
  { reg; mplan; groups; qunits; config; defs }

(* --- feeding ----------------------------------------------------------- *)

let unit_outputs t ~from_groups ~feed_direct ~flush_units =
  List.filter_map
    (fun u ->
      let shared_in =
        match u.gid with Some gid -> List.assoc gid from_groups | None -> []
      in
      let outs =
        match u.qtree with
        | None -> shared_in
        | Some tree ->
            let direct = feed_direct u tree in
            let via_shared =
              List.concat_map (Executor.feed_element tree) shared_in
            in
            let tail = if flush_units then Executor.flush_tree tree else [] in
            direct @ via_shared @ tail
      in
      if outs = [] then None else Some (u.qid, outs))
    t.qunits

let feed_element t e =
  let stream = Element.stream_name e in
  let from_groups =
    List.map
      (fun (g : group) ->
        ( g.gid,
          if List.mem stream g.gstreams then Executor.feed_element g.gtree e
          else [] ))
      t.groups
  in
  unit_outputs t ~from_groups
    ~feed_direct:(fun u tree ->
      if List.mem stream u.reads then Executor.feed_element tree e else [])
    ~flush_units:false

let flush t =
  (* Shared trees drain first: their flush outputs (results and final
     punctuations) still have to travel through the subscribers' residual
     trees before those flush themselves. *)
  let from_groups =
    List.map
      (fun (g : group) -> (g.gid, Executor.flush_tree g.gtree))
      t.groups
  in
  unit_outputs t ~from_groups
    ~feed_direct:(fun _ _ -> [])
    ~flush_units:true

(* --- state ------------------------------------------------------------- *)

let all_trees t =
  List.map (fun (g : group) -> ("shared:" ^ g.gid, g.gtree)) t.groups
  @ List.filter_map
      (fun u -> Option.map (fun tree -> (u.qid, tree)) u.qtree)
      t.qunits

let sum_over t f =
  List.fold_left (fun acc (_, tree) -> acc + f tree) 0 (all_trees t)

let total_data_state t = sum_over t Executor.total_data_state
let total_punct_state t = sum_over t Executor.total_punct_state
let total_index_state t = sum_over t Executor.total_index_state
let total_state_bytes t = sum_over t Executor.total_state_bytes

let state_breakdown t =
  List.map
    (fun (owner, tree) -> (owner, Executor.state_breakdown tree))
    (all_trees t)

(* --- running ----------------------------------------------------------- *)

type query_result = {
  outputs : Element.t list;
  emitted : int;
  hash : string;
}

type result = {
  per_query : (string * query_result) list;
  metrics : Metrics.t;
  consumed : int;
  emitted : int;
}

let run ?(sample_every = 100) ?(label = "multi-run") ?exporter t elements =
  let telemetry = t.config.Executor.Config.telemetry in
  let metrics = Metrics.create ~sample_every () in
  let consumed = ref 0 in
  let emitted = ref 0 in
  let acc : (string, Element.t list ref * int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun u -> Hashtbl.replace acc u.qid (ref [], ref 0))
    t.qunits;
  let accept per_query =
    List.iter
      (fun (qid, outs) ->
        let outputs, count = Hashtbl.find acc qid in
        List.iter
          (fun e ->
            if Element.is_data e then begin
              incr count;
              incr emitted
            end;
            outputs := e :: !outputs)
          outs)
      per_query
  in
  let prev_snapshot = ref None in
  let sample ~tick =
    if Telemetry.enabled telemetry then begin
      List.iter
        (fun (_, tree) ->
          List.iter
            (fun (b : Executor.breakdown) ->
              let set suffix v =
                Telemetry.set_gauge ~agg:Obs.Counters.Sum telemetry
                  (b.Executor.op_name ^ "." ^ suffix) v
              in
              set "data_state" b.Executor.data;
              set "punct_state" b.Executor.puncts;
              set "index_state" b.Executor.index;
              set "state_bytes" b.Executor.bytes)
            (Executor.state_breakdown tree))
        (all_trees t);
      Telemetry.emit telemetry
        (Obs.Event.Sample
           {
             tick;
             data_state = total_data_state t;
             punct_state = total_punct_state t;
             index_state = total_index_state t;
             state_bytes = total_state_bytes t;
             emitted = !emitted;
           });
      (match Telemetry.watchdog telemetry with
      | None -> ()
      | Some w ->
          List.iter
            (fun (_, tree) ->
              List.iter
                (fun (op : Operator.t) ->
                  match
                    Obs.Watchdog.observe w ~op:op.name ~tick
                      ~size:(op.data_state_size ())
                      ~unreachable:(Executor.unreachable_inputs tree op.name)
                  with
                  | None -> ()
                  | Some (a : Obs.Watchdog.alarm) ->
                      Telemetry.emit telemetry
                        (Obs.Event.Alarm
                           {
                             tick = a.tick;
                             op = a.op;
                             slope = a.slope;
                             size = a.size;
                             unreachable = a.unreachable;
                           }))
                (Executor.operators ~c:tree))
            (all_trees t));
      match exporter with
      | None -> ()
      | Some ex ->
          let snap =
            Obs.Snapshot.capture ?prev:!prev_snapshot ~tick
              (Telemetry.registry telemetry)
          in
          prev_snapshot := Some snap;
          Obs.Exporter.publish ex (Obs.Openmetrics.render snap)
    end
  in
  if Telemetry.enabled telemetry then begin
    Telemetry.set_clock telemetry 0;
    Telemetry.emit telemetry (Obs.Event.Run_start { tick = 0; label })
  end;
  Seq.iter
    (fun element ->
      incr consumed;
      Telemetry.set_clock telemetry !consumed;
      accept (feed_element t element);
      Metrics.observe metrics ~tick:!consumed
        ~data_state:(total_data_state t)
        ~punct_state:(total_punct_state t)
        ~index_state:(total_index_state t)
        ~state_bytes:(total_state_bytes t) ~emitted:!emitted ();
      if !consumed mod sample_every = 0 then sample ~tick:!consumed)
    elements;
  accept (flush t);
  Metrics.flush metrics ~tick:!consumed ~data_state:(total_data_state t)
    ~punct_state:(total_punct_state t)
    ~index_state:(total_index_state t)
    ~state_bytes:(total_state_bytes t) ~emitted:!emitted ();
  sample ~tick:!consumed;
  if Telemetry.enabled telemetry then
    Telemetry.emit telemetry
      (Obs.Event.Run_end { tick = !consumed; emitted = !emitted });
  let per_query =
    List.map
      (fun u ->
        let outputs, count = Hashtbl.find acc u.qid in
        let outputs = List.rev !outputs in
        ( u.qid,
          {
            outputs;
            emitted = !count;
            hash = Executor.output_hash outputs;
          } ))
      t.qunits
  in
  { per_query; metrics; consumed = !consumed; emitted = !emitted }

(* --- report ------------------------------------------------------------ *)

let report ?(meta = []) t (r : result) =
  let operators =
    List.concat_map
      (fun (_, tree) ->
        List.map
          (fun (op : Operator.t) ->
            {
              Obs.Report.name = op.Operator.name;
              inputs = op.input_names;
              unreachable_inputs =
                Executor.unreachable_inputs tree op.Operator.name;
              stats = Operator.stats_to_alist (op.stats ());
              state =
                [
                  ("data", op.data_state_size ());
                  ("puncts", op.punct_state_size ());
                  ("index", op.index_state_size ());
                  ("bytes", op.state_bytes ());
                ];
            })
          (Executor.operators ~c:tree))
      (all_trees t)
  in
  let queries_meta =
    Obs.Json.List
      (List.map
         (fun (qid, (qr : query_result)) ->
           Obs.Json.Obj
             [
               ("qid", Obs.Json.String qid);
               ("emitted", Obs.Json.Int qr.emitted);
               ("hash", Obs.Json.String qr.hash);
             ])
         r.per_query)
  in
  let groups_meta =
    Obs.Json.List
      (List.map
         (fun (g : group) ->
           Obs.Json.Obj
             [
               ("gid", Obs.Json.String g.gid);
               ( "streams",
                 Obs.Json.List
                   (List.map (fun s -> Obs.Json.String s) g.gstreams) );
             ])
         t.groups)
  in
  let telemetry = t.config.Executor.Config.telemetry in
  {
    Obs.Report.meta =
      meta
      @ [
          ("consumed", Obs.Json.Int r.consumed);
          ("emitted", Obs.Json.Int r.emitted);
          ("queries", queries_meta);
          ("shared_groups", groups_meta);
        ];
    operators;
    registry = Telemetry.registry telemetry;
    series = Executor.series_json r.metrics;
    alarms = Telemetry.alarms telemetry;
  }

(* --- sharded driving --------------------------------------------------- *)

type sharded_result = {
  s_per_query : (string * query_result) list;
  s_consumed : int;
  s_emitted : int;
  s_shards : int;
}

type message = Batch of (int * Element.t) array | Stop of int

type worker_state = {
  exec : t;
  queue : message Spsc.t;
  (* (seq, rank, element) per query, newest first; read by the driver
     only after Domain.join establishes happens-before *)
  recorded : (string, (int * int * Element.t) list ref) Hashtbl.t;
  mutable rank : int;
}

let worker (w : worker_state) =
  let record seq per_query =
    List.iter
      (fun (qid, outs) ->
        let cell = Hashtbl.find w.recorded qid in
        List.iter
          (fun e ->
            cell := (seq, w.rank, e) :: !cell;
            w.rank <- w.rank + 1)
          outs)
      per_query
  in
  let rec loop () =
    match Spsc.pop_wait w.queue with
    | `Closed -> ()
    | `Item (Batch arr) ->
        Array.iter (fun (seq, e) -> record seq (feed_element w.exec e)) arr;
        loop ()
    | `Item (Stop final) -> record (final + 1) (flush w.exec)
  in
  loop ()

let run_sharded ?(config = Executor.Config.default) ?(share = true)
    ?(batch_cap = 256) ~shards registry elements =
  if shards <= 0 then
    invalid_arg "Multi_executor.run_sharded: shards must be positive";
  let entries = Query_registry.entries registry in
  let queries = List.map (fun e -> e.Query_registry.query) entries in
  let router = Shard_router.create_multi ~shards queries in
  if not (Shard_router.sound_for_shared router ~subscribers:queries) then
    invalid_arg
      "Multi_executor.run_sharded: outer/anti queries require exact \
       partitioning of their streams";
  (* Worker DAGs run uninstrumented: per-shard telemetry merging is the
     single-query Parallel_executor's concern; the multi driver's
     observability story is the sequential run's. *)
  let wconfig =
    {
      config with
      Executor.Config.telemetry = Telemetry.null;
      contract = None;
    }
  in
  let mk_worker () =
    let exec = create ~config:wconfig ~share registry in
    let recorded = Hashtbl.create 8 in
    List.iter
      (fun e -> Hashtbl.replace recorded e.Query_registry.qid (ref []))
      entries;
    { exec; queue = Spsc.create ~capacity:64; recorded; rank = 0 }
  in
  let workers = Array.init shards (fun _ -> mk_worker ()) in
  let domains =
    Array.map (fun w -> Domain.spawn (fun () -> worker w)) workers
  in
  let push k msg =
    match Spsc.push workers.(k).queue msg with
    | `Ok -> ()
    | `Closed -> failwith "Multi_executor.run_sharded: worker died"
  in
  let bufs = Array.make shards [] in
  let buf_len = Array.make shards 0 in
  let flush_buf k =
    if buf_len.(k) > 0 then begin
      push k (Batch (Array.of_list (List.rev bufs.(k))));
      bufs.(k) <- [];
      buf_len.(k) <- 0
    end
  in
  let send k entry =
    bufs.(k) <- entry :: bufs.(k);
    buf_len.(k) <- buf_len.(k) + 1;
    if buf_len.(k) >= max 1 batch_cap then flush_buf k
  in
  let consumed = ref 0 in
  Seq.iter
    (fun e ->
      incr consumed;
      match Shard_router.route_element router e with
      | Shard_router.Local k -> send k (!consumed, e)
      | Shard_router.Broadcast ->
          for k = 0 to shards - 1 do
            send k (!consumed, e)
          done)
    elements;
  for k = 0 to shards - 1 do
    flush_buf k;
    push k (Stop !consumed)
  done;
  Array.iter Domain.join domains;
  let s_per_query =
    List.map
      (fun entry ->
        let qid = entry.Query_registry.qid in
        let outputs =
          Array.to_list workers
          |> List.concat_map (fun w ->
                 List.rev_map
                   (fun (seq, rank, e) -> (seq, w.rank, rank, e))
                   !(Hashtbl.find w.recorded qid))
          |> List.sort compare
          |> List.map (fun (_, _, _, e) -> e)
        in
        let emitted =
          List.length (List.filter Element.is_data outputs)
        in
        (qid, { outputs; emitted; hash = Executor.output_hash outputs }))
      entries
  in
  {
    s_per_query;
    s_consumed = !consumed;
    s_emitted =
      List.fold_left
        (fun acc (_, (qr : query_result)) -> acc + qr.emitted)
        0 s_per_query;
    s_shards = shards;
  }
