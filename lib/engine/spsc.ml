type 'a t = {
  slots : 'a option array;
  capacity : int;
  mutable head : int;  (* next index to read; advanced by the consumer *)
  mutable tail : int;  (* next index to write; advanced by the producer *)
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  {
    slots = Array.make capacity None;
    capacity;
    head = 0;
    tail = 0;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let push t x =
  Mutex.lock t.lock;
  while t.tail - t.head >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  t.slots.(t.tail mod t.capacity) <- Some x;
  t.tail <- t.tail + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let take t =
  let i = t.head mod t.capacity in
  let x =
    match t.slots.(i) with
    | Some x -> x
    | None -> assert false (* tail > head ⇒ the slot is filled *)
  in
  (* Clear the slot so the queue does not retain the element. *)
  t.slots.(i) <- None;
  t.head <- t.head + 1;
  Condition.signal t.not_full;
  x

let pop t =
  Mutex.lock t.lock;
  let r = if t.tail = t.head then None else Some (take t) in
  Mutex.unlock t.lock;
  r

let pop_wait t =
  Mutex.lock t.lock;
  while t.tail = t.head do
    Condition.wait t.not_empty t.lock
  done;
  let x = take t in
  Mutex.unlock t.lock;
  x

let length t =
  Mutex.lock t.lock;
  let n = t.tail - t.head in
  Mutex.unlock t.lock;
  n
