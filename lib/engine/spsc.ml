type 'a t = {
  slots : 'a option array;
  capacity : int;
  mutable head : int;  (* next index to read; advanced by the consumer *)
  mutable tail : int;  (* next index to write; advanced by the producer *)
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  {
    slots = Array.make capacity None;
    capacity;
    head = 0;
    tail = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (* Both sides may be parked: a producer on not_full, a consumer on
       not_empty. Wake everyone so no one waits on a dead peer. *)
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
  end;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let push t x =
  Mutex.lock t.lock;
  while (not t.closed) && t.tail - t.head >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then begin
    Mutex.unlock t.lock;
    `Closed
  end
  else begin
    t.slots.(t.tail mod t.capacity) <- Some x;
    t.tail <- t.tail + 1;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock;
    `Ok
  end

(* Timed variant for supervision edges the conditions cannot cover (e.g. a
   peer wedged rather than dead). [Condition] has no timed wait, so this
   polls: acceptable because the timeout path is a rare last resort, not
   the steady state. *)
let push_timeout t ~timeout_s x =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt () =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      `Closed
    end
    else if t.tail - t.head < t.capacity then begin
      t.slots.(t.tail mod t.capacity) <- Some x;
      t.tail <- t.tail + 1;
      Condition.signal t.not_empty;
      Mutex.unlock t.lock;
      `Ok
    end
    else begin
      Mutex.unlock t.lock;
      if Unix.gettimeofday () >= deadline then `Timeout
      else begin
        Unix.sleepf 0.0002;
        attempt ()
      end
    end
  in
  attempt ()

let take t =
  let i = t.head mod t.capacity in
  let x =
    match t.slots.(i) with
    | Some x -> x
    | None -> assert false (* tail > head ⇒ the slot is filled *)
  in
  (* Clear the slot so the queue does not retain the element. *)
  t.slots.(i) <- None;
  t.head <- t.head + 1;
  Condition.signal t.not_full;
  x

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.tail <> t.head then `Item (take t)
    else if t.closed then `Closed
    else `Empty
  in
  Mutex.unlock t.lock;
  r

let pop_wait t =
  Mutex.lock t.lock;
  while t.tail = t.head && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  (* Drain-then-close: elements enqueued before the close are still
     delivered; only an empty closed queue reports [`Closed]. *)
  let r = if t.tail <> t.head then `Item (take t) else `Closed in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = t.tail - t.head in
  Mutex.unlock t.lock;
  n
