(** The punctuation-aware MJoin operator: an n-way (n ≥ 2) symmetric hash
    join in the style of Viglas et al. [13], extended with the paper's
    chained purge strategy and punctuation propagation.

    - A new tuple of one input probes the other inputs' states along a
      spanning walk of the operator's join graph and emits every complete
      match.
    - Punctuations are stored per input; at each purge round (per the
      {!Purge_policy}), every input whose purge plan exists (i.e. whose
      state is purgeable under the operator's scheme set — Theorem 3) is
      scanned and tuples proven dead by {!Core.Chained_purge} are dropped.
      Inputs without a purge plan are never scanned: no punctuation can ever
      purge them, exactly the unbounded-state behaviour the safety checker
      exists to flag.
    - After purging, a stored punctuation [p] of input [q] whose matching
      tuples have fully drained from [q]'s state is *propagated*: the
      operator emits [p] lifted to the output schema, which is what makes
      tree-shaped plans and downstream group-bys workable (§4.1.2 context,
      rule of Tucker et al. [12]).
    - Optionally, stored punctuations are themselves purged by partner
      punctuations and/or expired by lifespan (§5.1). *)

type input = {
  name : string;
  schema : Relational.Schema.t;
  schemes : Streams.Scheme.t list;
      (** schemes of this input: declared (leaf) or derived (sub-plan) *)
}

(** [create ~inputs ~predicates ()] builds the operator.
    [predicates] atoms must reference input names/attributes.
    [telemetry] (default {!Telemetry.null}) receives structured purge
    events and per-operator probe/insert/purge-lag measurements; the null
    handle makes every instrumentation site a no-op.
    [contract], when given, decides the fate of late tuples (arrivals
    contradicting this input's stored punctuations — detected and counted
    regardless) and punctuation anomalies, and receives an emergency
    state-shedder for degraded mode.
    @raise Invalid_argument on malformed inputs (fewer than two, duplicate
    names, atoms over unknown inputs). *)
val create :
  ?name:string ->
  ?policy:Purge_policy.t ->
  ?punct_lifespan:Core.Punct_purge.lifespan ->
  ?punct_partner_purge:bool ->
  ?telemetry:Telemetry.t ->
  ?contract:Contract.t ->
  inputs:input list ->
  predicates:Relational.Predicate.t ->
  unit ->
  Operator.t

(** [purge_plans ~inputs ~predicates] — which inputs the operator will be
    able to purge, with their chained purge plans (exposed for tests and
    explain output). *)
val purge_plans :
  inputs:input list ->
  predicates:Relational.Predicate.t ->
  (string * Core.Chained_purge.plan option) list
