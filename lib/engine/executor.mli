(** Plan compilation and execution.

    Compiles an execution plan ({!Query.Plan}) over a query into a tree of
    punctuation-aware join operators, then drives it from an interleaved
    element sequence, collecting results and state metrics.

    Intermediate inputs carry *derived* punctuation schemes: a scheme of a
    base stream [q] is lifted to a sub-plan's output when [q]'s join state
    is purgeable inside that sub-plan (then the sub-operator's propagation
    rule will eventually emit the corresponding punctuations — see
    {!Mjoin}). This mirrors Lemma 1's use of base-stream schemes for
    composite operator inputs. *)

type binary_impl =
  | Use_mjoin  (** every operator is an {!Mjoin} (2-input included) *)
  | Use_pjoin  (** binary operators use {!Sym_hash_join} *)

type compiled

(** Compilation configuration — the one record that used to be seven
    optional arguments. [default] preserves every historical default, so
    [compile query plan] without a config is the engine as it always was.
    Build variations with [Config.make] or record update syntax
    ([{ Config.default with policy }]). *)
module Config : sig
  type t = {
    policy : Purge_policy.t;  (** purge cadence (default [Eager]) *)
    binary_impl : binary_impl;  (** default [Use_mjoin] *)
    punct_lifespan : Core.Punct_purge.lifespan option;
        (** expire stored punctuations (§5.1); default [None] *)
    punct_partner_purge : bool;
        (** purge stored punctuations by partner punctuations; default
            [false] *)
    telemetry : Telemetry.t;
        (** shared by every operator of the tree: operators are created
            with it and wrapped by {!Telemetry.wrap_op}, so an enabled
            handle sees the full event stream and per-operator registry.
            With the default {!Telemetry.null} handle compilation (and the
            run) is behaviour-identical to the uninstrumented engine. *)
    contract : Contract.t option;
        (** punctuation-contract monitor shared by every join operator *)
    op_prefix : string;
        (** prefix on generated operator names ([J1] → [<prefix>J1]);
            multi-query execution uses ["<qid>/"] so telemetry breaks out
            per query (default [""]) *)
  }

  val default : t

  val make :
    ?policy:Purge_policy.t ->
    ?binary_impl:binary_impl ->
    ?punct_lifespan:Core.Punct_purge.lifespan ->
    ?punct_partner_purge:bool ->
    ?telemetry:Telemetry.t ->
    ?contract:Contract.t ->
    ?op_prefix:string ->
    unit ->
    t
end

(** [compile ?config query plan] — build the operator tree for [plan] under
    [config] (default {!Config.default}). *)
val compile : ?config:Config.t -> Query.Cjq.t -> Query.Plan.t -> compiled

(** [config c] — the configuration the tree was compiled with. *)
val config : compiled -> Config.t

(** [operators c] — bottom-up (each operator after its children). *)
val operators : c:compiled -> Operator.t list

(** [telemetry c] — the handle the tree was compiled with. *)
val telemetry : compiled -> Telemetry.t

(** [contract c] — the punctuation-contract monitor the tree was compiled
    with, if any. Shared by every join operator of the tree; {!run} drives
    its stall checks and budget enforcement on the sampling grid. *)
val contract : compiled -> Contract.t option

(** [register_sources ct c] — arm [ct]'s stall tracking with [c]'s leaf
    (stream, scheme) sources. [compile] already does this for its own
    [?contract]; the sharded driver uses this to track stalls on a separate
    driver-side contract while per-shard contracts ride inside workers. *)
val register_sources : Contract.t -> compiled -> unit

(** [unreachable_inputs c op] — inputs of [op] whose state fails the GPG
    purge-reachability check ({!Core.Gpg.reaches_all}); empty for safe
    plans and unknown operators. This is the static diagnosis the watchdog
    attaches to its alarms. *)
val unreachable_inputs : compiled -> string -> string list

(** [output_schema c] — schema of the root's results. *)
val output_schema : compiled -> Relational.Schema.t

(** [derived_schemes c] — the lifted schemes of the root output (what a
    consumer such as a group-by may rely on). *)
val derived_schemes : compiled -> Streams.Scheme.t list

type result = {
  outputs : Streams.Element.t list;  (** root outputs, in emission order *)
  metrics : Metrics.t;
  consumed : int;
  emitted : int;
      (** data tuples that reached the outputs, counted *after* the sink
          (a filtering/aggregating sink reduces it) *)
}

(** [run ?sample_every ?sink ?label c elements] pushes every element
    through the tree (elements of streams the plan does not read are
    ignored), flushes deferred purge work at the end, and samples total
    operator state every [sample_every] elements. [sink], when given,
    additionally consumes every root output as it is emitted (e.g. a
    group-by operator). Under an enabled telemetry handle the run also
    emits [Run_start]/[Sample]/[Run_end] events (with [label] on the start
    marker), stamps the element clock, and feeds the watchdog one
    state-size point per operator on the sampling grid.

    [batch] (default: element-at-a-time) drives the tree through the
    operators' {!Operator.t.push_batch} fast path in groups of up to
    [batch] elements, always cutting at the sampling grid so the metrics
    series is identical to the element path. Data outputs are identical;
    propagated punctuations may be grouped per punctuation run; telemetry
    events inside a batch share the batch-end tick.

    Under an enabled telemetry handle the run additionally maintains, on
    the sampling grid, per-operator state gauges ([<op>.data_state],
    [.punct_state], [.index_state], [.state_bytes]) and whole-process GC
    counters ([gc_minor_words] etc., deltas of [Gc.quick_stat] between
    samples). [exporter], when given, receives one rendered
    {!Obs.Openmetrics} snapshot per grid point via {!Obs.Exporter.publish}
    (requires an enabled telemetry handle; outputs, hash, metrics series
    and event trace are identical with and without it). *)
val run :
  ?sample_every:int ->
  ?batch:int ->
  ?sink:Operator.t ->
  ?label:string ->
  ?exporter:Obs.Exporter.t ->
  compiled ->
  Streams.Element.t Seq.t ->
  result

(** [total_data_state c] / [total_punct_state c] — current stored tuples /
    punctuations across all operators. *)
val total_data_state : compiled -> int

(** [total_index_state c] — secondary-index entries across all operators;
    stays O({!total_data_state}) now that purging maintains the indexes. *)
val total_index_state : compiled -> int

(** [total_state_bytes c] — approximate resident bytes of all join states
    (see {!Join_state.mem_stats}). *)
val total_state_bytes : compiled -> int

val total_punct_state : compiled -> int

(** Per-operator state snapshot: stored tuples, stored punctuations,
    secondary-index entries and approximate resident bytes — the columns a
    leak diagnosis needs (an index column diverging from data is exactly
    the historical leak shape). *)
type breakdown = {
  op_name : string;
  data : int;
  puncts : int;
  index : int;
  bytes : int;
}

(** [state_breakdown c] — one {!breakdown} per operator, bottom-up. The
    quickest way to see *which* operator of a plan is the one leaking. *)
val state_breakdown : compiled -> breakdown list

(** [output_hash outputs] — hex digest of the {e multiset} of data tuples
    in [outputs] (sorted renderings, so emission order is irrelevant;
    punctuations are excluded). A sharded and a sequential run of the same
    workload must produce equal hashes — CI compares them. *)
val output_hash : Streams.Element.t list -> string

(** [render_data e] — the canonical rendering of one data tuple as used by
    {!output_hash} ([None] for punctuations). {!Checkpoint.Rolling} digests
    the same renderings incrementally so a soak run can compare output
    multisets without retaining them. *)
val render_data : Streams.Element.t -> string option

(** [series_json metrics] — the metrics series as the JSON array a report
    embeds; shared with {!Parallel_executor}'s aggregated reports. *)
val series_json : Metrics.t -> Obs.Json.t

(** [report ?meta c result] — the machine-readable run report: per-operator
    stats/state with unreachable-input diagnoses, the telemetry registry,
    the metrics series and watchdog alarms. [meta] entries are prepended to
    the run metadata ([consumed]/[emitted] are always present). *)
val report : ?meta:(string * Obs.Json.t) list -> compiled -> result -> Obs.Report.t

(** Element-at-a-time driving, for callers that multiplex several compiled
    queries over one input (the DSMS): [feed_element] pushes one element
    through the tree and returns the root outputs; [flush_tree] drains
    deferred purge/propagation work bottom-up (call once, at end of
    input). *)
val feed_element : compiled -> Streams.Element.t -> Streams.Element.t list

(** [feed_batch c elements] — the batched counterpart of {!feed_element}:
    one push of a run of consecutive input elements through the tree via
    the operators' {!Operator.t.push_batch} fast path. Data outputs are
    identical to feeding the elements one at a time; punctuation outputs
    may be grouped per punctuation run. *)
val feed_batch : compiled -> Streams.Element.t array -> Streams.Element.t list

val flush_tree : compiled -> Streams.Element.t list
