open Relational
module Element = Streams.Element
module Punctuation = Streams.Punctuation

let create ?(name = "union") ~left ~right () =
  let same_shape =
    Schema.arity left = Schema.arity right
    && List.for_all2
         (fun (a : Schema.attribute) (b : Schema.attribute) ->
           String.equal a.name b.name && a.ty = b.ty)
         (Schema.attributes left) (Schema.attributes right)
  in
  if not same_shape then
    invalid_arg "Union.create: input schemas must agree";
  let out_schema = Schema.make ~stream:name (Schema.attributes left) in
  let stores =
    [
      (Schema.stream_name left, Punct_store.create left);
      (Schema.stream_name right, Punct_store.create right);
    ]
  in
  let store_of n =
    match List.assoc_opt n stores with
    | Some s -> s
    | None -> invalid_arg (Fmt.str "Union %s: unknown input %s" name n)
  in
  let other_of n =
    match stores with
    | [ (a, sa); (_, sb) ] -> if n = a then sb else sa
    | _ -> assert false
  in
  let stats = ref Operator.empty_stats in
  let now = ref 0 in
  let lift p =
    (* same attribute names, output stream identity *)
    Punctuation.make out_schema (Punctuation.patterns p)
  in
  (* A punctuation may leave this operator once the other input has issued
     one at least as strong: for watermarks this is exactly the min rule. *)
  let emittable () =
    List.concat_map
      (fun (n, store) ->
        let other = other_of n in
        Punct_store.collect_forwardable store
          ~drained:(fun p -> Punct_store.subsumed_by_stored other p)
        |> List.map lift)
      stores
    (* both sides releasing the same guarantee in one round would emit it
       twice; the duplicate adds nothing downstream *)
    |> List.sort_uniq Punctuation.compare
  in
  let push element =
    incr now;
    let input = Element.stream_name element in
    match element with
    | Element.Data tup ->
        ignore (store_of input);
        stats :=
          {
            !stats with
            tuples_in = !stats.tuples_in + 1;
            tuples_out = !stats.tuples_out + 1;
          };
        [ Element.Data (Tuple.make out_schema (Tuple.values tup)) ]
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        ignore (Punct_store.insert (store_of input) ~now:!now p);
        let out = emittable () in
        stats := { !stats with puncts_out = !stats.puncts_out + List.length out };
        List.map (fun q -> Element.Punct q) out
  in
  {
    Operator.name;
    out_schema;
    input_names = List.map fst stores;
    push;
    push_batch = Operator.batch_of_push push;
    flush = (fun () -> []);
    data_state_size = (fun () -> 0);
    punct_state_size =
      (fun () ->
        List.fold_left (fun acc (_, s) -> acc + Punct_store.size s) 0 stores);
    index_state_size = (fun () -> 0);
    state_bytes = (fun () -> 0);
    stats = (fun () -> !stats);
    persistence = Operator.Volatile "union punctuation stores are not serialized";
  }
