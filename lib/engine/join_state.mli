(** A join state [Υ_S]: the stored tuples of one input of a join operator,
    with hash indexes built on demand per probe key (the hash tables of the
    symmetric hash join / MJoin algorithms the paper assumes).

    Purging maintains the secondary indexes eagerly: removing a tuple also
    removes its id from every index bucket, and a bucket that empties is
    deleted from its key table. Total operator memory — not just the live
    tuple count — is therefore O(live tuples), which is what Theorem 1's
    bounded-state guarantee is about. {!mem_stats} exposes the accounting. *)

type t

(** Memory accounting for one join state. [index_entries] counts tuple ids
    across all buckets of all indexes; [buckets] counts non-empty buckets;
    [approx_bytes] is a word-counting estimate of the resident size (tuples
    + index cells + bucket keys), meant for trend analysis rather than
    byte-exact measurement. *)
type mem_stats = {
  live_tuples : int;
  index_entries : int;
  buckets : int;
  indexes : int;
  approx_bytes : int;
}

val create : Relational.Schema.t -> t
val schema : t -> Relational.Schema.t

(** [insert ?tick t tuple] stores [tuple]; [tick] (default: the insertion
    counter) is remembered for age-based eviction ({!evict_before}). *)
val insert : ?tick:int -> t -> Relational.Tuple.t -> unit

(** [evict_before t ~tick] removes every live tuple inserted with a tick
    strictly below [tick]; returns how many. This is the sliding-window
    eviction primitive (§2.2's window-based alternative to punctuation
    purging). *)
val evict_before : t -> tick:int -> int

(** [size t] — live tuples (the paper's join-state memory). *)
val size : t -> int

(** [insertions t] — total ever inserted (monotone). *)
val insertions : t -> int

(** [probe t ~attrs values] — live tuples whose projection on attribute
    positions [attrs] equals [values]; indexed after the first probe on a
    given key shape. *)
val probe : t -> attrs:int list -> Relational.Value.t list -> Relational.Tuple.t list

val iter : (Relational.Tuple.t -> unit) -> t -> unit
val fold : ('a -> Relational.Tuple.t -> 'a) -> 'a -> t -> 'a

(** [to_relation t] — snapshot as a finite relation (chained-purge oracle
    input). *)
val to_relation : t -> Relational.Relation.t

(** [purge_if t keep_if_false] removes every live tuple satisfying the
    predicate; returns how many were removed. *)
val purge_if : t -> (Relational.Tuple.t -> bool) -> int

(** [exists_matching t p] — is some live tuple matched by punctuation [p]?
    (punctuation-propagation drain test). *)
val exists_matching : t -> Streams.Punctuation.t -> bool

(** [index_entries t] — tuple ids stored across all index buckets. With
    eager index maintenance this is [size t * number of indexes]. *)
val index_entries : t -> int

(** [bucket_count t] — non-empty hash buckets across all indexes. *)
val bucket_count : t -> int

val mem_stats : t -> mem_stats
