(** A join state [Υ_S]: the stored tuples of one input of a join operator,
    with hash indexes built on demand per probe key (the hash tables of the
    symmetric hash join / MJoin algorithms the paper assumes).

    Purging maintains the secondary indexes eagerly: removing a tuple also
    removes its id from every index bucket, and a bucket that empties is
    deleted from its key table. Total operator memory — not just the live
    tuple count — is therefore O(live tuples), which is what Theorem 1's
    bounded-state guarantee is about. {!mem_stats} exposes the accounting.

    Null join keys follow SQL semantics: a tuple whose key projection
    contains [Value.Null] is never indexed, and probing with a Null value
    returns nothing. The bucket tables are keyed by [Value.compare] (which
    treats Null = Null as equal so values can key containers), while join
    predicates use [Value.equal] (which rejects Null = Null) — skipping
    nulls at the index boundary is what keeps the two paths consistent, so
    the answer no longer depends on which atom the probe order uses as the
    hash key.

    The single-attribute Int key — the common shape for equi-joins over
    synthetic and integer-keyed workloads — is specialized at index-build
    time to a native [(int, _) Hashtbl.t], skipping the boxed
    heterogeneous-list hashing of the generic representation. *)

type t

(** A resolved secondary index, for compiled probe programs: obtained once
    via {!index_on} at plan time and probed with {!probe_handle}, skipping
    the per-probe index lookup of {!probe}. Handles stay valid for the
    lifetime of the state (indexes are never dropped, only maintained). *)
type handle

(** Memory accounting for one join state. [index_entries] counts tuple ids
    across all buckets of all indexes; [buckets] counts non-empty buckets;
    [approx_bytes] is a word-counting estimate of the resident size (tuples
    + index cells + bucket keys), meant for trend analysis rather than
    byte-exact measurement. *)
type mem_stats = {
  live_tuples : int;
  index_entries : int;
  buckets : int;
  indexes : int;
  approx_bytes : int;
}

val create : Relational.Schema.t -> t
val schema : t -> Relational.Schema.t

(** [insert ?tick t tuple] stores [tuple]; [tick] (default: the insertion
    counter) is remembered for age-based eviction ({!evict_before}). *)
val insert : ?tick:int -> t -> Relational.Tuple.t -> unit

(** [evict_before t ~tick] removes every live tuple inserted with a tick
    strictly below [tick]; returns how many. This is the sliding-window
    eviction primitive (§2.2's window-based alternative to punctuation
    purging). *)
val evict_before : t -> tick:int -> int

(** [size t] — live tuples (the paper's join-state memory). *)
val size : t -> int

(** [insertions t] — total ever inserted (monotone). *)
val insertions : t -> int

(** [probe t ~attrs values] — live tuples whose projection on attribute
    positions [attrs] equals [values]; indexed after the first probe on a
    given key shape. A [values] containing [Null] matches nothing (SQL
    null-key semantics, see the module docs). *)
val probe : t -> attrs:int list -> Relational.Value.t list -> Relational.Tuple.t list

(** [index_on t ~attr] — the (built-on-demand) single-attribute index on
    position [attr], as a reusable probe handle. *)
val index_on : t -> attr:int -> handle

(** [probe_handle t h v] — live tuples whose [h]-attribute equals [v];
    [Null] matches nothing. Equivalent to {!probe} on [h]'s attribute but
    without the index search or key-list allocation. *)
val probe_handle : t -> handle -> Relational.Value.t -> Relational.Tuple.t list

(** Tick-carrying twins of {!probe} / {!probe_handle}, returning each match
    as [(insertion tick, tuple)]. The instrumented probe path uses these to
    compute a result's latency span (emission tick − oldest contributing
    arrival tick); the plain variants stay allocation-lean for the
    uninstrumented hot path. *)
val probe_entries :
  t -> attrs:int list -> Relational.Value.t list -> (int * Relational.Tuple.t) list

val probe_entries_handle :
  t -> handle -> Relational.Value.t -> (int * Relational.Tuple.t) list

(** [evict_oldest t ~count] removes the [count] oldest live tuples by
    (insertion tick, insertion id) — a deterministic total order, so load
    shedding is reproducible across runs and shard incarnations; returns
    how many were removed (< [count] when the state is smaller). *)
val evict_oldest : t -> count:int -> int

val iter : (Relational.Tuple.t -> unit) -> t -> unit
val fold : ('a -> Relational.Tuple.t -> 'a) -> 'a -> t -> 'a

(** [fold_entries f init t] — like {!fold} with each tuple's insertion
    tick. *)
val fold_entries : ('a -> int -> Relational.Tuple.t -> 'a) -> 'a -> t -> 'a

(** [to_relation t] — snapshot as a finite relation (chained-purge oracle
    input). *)
val to_relation : t -> Relational.Relation.t

(** [purge_if t keep_if_false] removes every live tuple satisfying the
    predicate; returns how many were removed. *)
val purge_if : t -> (Relational.Tuple.t -> bool) -> int

(** [exists_matching t p] — is some live tuple matched by punctuation [p]?
    (punctuation-propagation drain test). *)
val exists_matching : t -> Streams.Punctuation.t -> bool

(** [index_entries t] — tuple ids stored across all index buckets. With
    eager index maintenance this is [size t * number of indexes]. *)
val index_entries : t -> int

(** [bucket_count t] — non-empty hash buckets across all indexes. *)
val bucket_count : t -> int

val mem_stats : t -> mem_stats

(** Versioned binary serialization ({!Streams.Wire}) for checkpointing.
    [write_snapshot] captures the live entries (with insertion ids and
    ticks) and the shape of every index; [read_snapshot] restores {e in
    place} — compiled probe programs hold resolved {!handle}s into this
    state's index records, so the records are kept and refilled, and
    buckets are rebuilt in the original insertion order (probe output
    order is reproduced exactly).
    @raise Streams.Wire.Corrupt on a truncated, malformed or
    version-mismatched snapshot. *)
val write_snapshot : Streams.Wire.W.t -> t -> unit

val read_snapshot : t -> Streams.Wire.R.t -> unit
