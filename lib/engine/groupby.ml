open Relational
module Punctuation = Streams.Punctuation
module Element = Streams.Element

type aggregate =
  | Count
  | Sum of string
  | Min of string
  | Max of string

type acc = CInt of int | CFloat of float

let acc_value = function CInt i -> Value.Int i | CFloat f -> Value.Float f

let create ?(name = "groupby") ~input ~group_by ~aggregate () =
  if group_by = [] then invalid_arg "Groupby.create: empty grouping key";
  let key_idxs = List.map (Schema.attr_index input) group_by in
  let agg_attr attr =
    let idx = Schema.attr_index input attr in
    match (Schema.attr_at input idx).Schema.ty with
    | Value.TInt | Value.TFloat -> idx
    | Value.TStr | Value.TBool ->
        invalid_arg
          (Printf.sprintf "Groupby.create: attribute %s is not numeric" attr)
  in
  let agg_ty, agg_idx =
    match aggregate with
    | Count -> (Value.TInt, None)
    | Sum a | Min a | Max a ->
        let idx = agg_attr a in
        ((Schema.attr_at input idx).Schema.ty, Some idx)
  in
  let out_schema =
    Schema.make ~stream:name
      (List.map (fun i -> Schema.attr_at input i) key_idxs
      @ [ { Schema.name = "agg"; ty = agg_ty } ])
  in
  let groups : (Value.t list, acc) Hashtbl.t = Hashtbl.create 64 in
  let stats = ref Operator.empty_stats in
  let numeric tup idx =
    match Tuple.get tup idx with
    | Value.Int i -> CInt i
    | Value.Float f -> CFloat f
    | Value.Str _ | Value.Bool _ | Value.Null ->
        invalid_arg "Groupby: non-numeric aggregate value"
  in
  let combine a b =
    match aggregate, a, b with
    | (Sum _ | Count), CInt x, CInt y -> CInt (x + y)
    | (Sum _ | Count), CFloat x, CFloat y -> CFloat (x +. y)
    | Min _, CInt x, CInt y -> CInt (min x y)
    | Min _, CFloat x, CFloat y -> CFloat (min x y)
    | Max _, CInt x, CInt y -> CInt (max x y)
    | Max _, CFloat x, CFloat y -> CFloat (max x y)
    | _ -> invalid_arg "Groupby: mixed aggregate value types"
  in
  let contribution tup =
    match aggregate, agg_idx with
    | Count, None -> CInt 1
    | (Sum _ | Min _ | Max _), Some idx -> numeric tup idx
    | Count, Some _ | (Sum _ | Min _ | Max _), None -> assert false
  in
  let emit_group key acc =
    Hashtbl.remove groups key;
    Tuple.make out_schema (key @ [ acc_value acc ])
  in
  let push element =
    match element with
    | Element.Data tup ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        let key = Tuple.project tup key_idxs in
        let c = contribution tup in
        (match Hashtbl.find_opt groups key with
        | Some acc -> Hashtbl.replace groups key (combine acc c)
        | None -> Hashtbl.add groups key c);
        []
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        (* Emit every group whose key the punctuation covers: no more
           members can arrive for it. *)
        let ready =
          Hashtbl.fold
            (fun key acc out ->
              let bindings = List.combine key_idxs key in
              if Punctuation.covers p bindings then (key, acc) :: out
              else out)
            groups []
        in
        let results =
          List.map (fun (key, acc) -> emit_group key acc) ready
        in
        stats :=
          {
            !stats with
            tuples_out = !stats.tuples_out + List.length results;
            tuples_purged = !stats.tuples_purged + List.length results;
          };
        (* Forward the punctuation when it speaks about the group key, so
           downstream consumers also learn the groups are closed. *)
        let forward =
          let pinned = List.map fst (Punctuation.const_bindings p) in
          if List.for_all (fun i -> List.mem i pinned) key_idxs then
            let bindings =
              List.filter_map
                (fun (i, v) ->
                  if List.mem i key_idxs then
                    Some ((Schema.attr_at input i).Schema.name, v)
                  else None)
                (Punctuation.const_bindings p)
            in
            [ Element.Punct (Punctuation.of_bindings out_schema bindings) ]
          else []
        in
        stats :=
          { !stats with puncts_out = !stats.puncts_out + List.length forward };
        List.map (fun t -> Element.Data t) results @ forward
  in
  let save () =
    let module W = Streams.Wire.W in
    let b = Buffer.create 256 in
    W.u8 b 1;
    Operator.write_stats b !stats;
    let entries = Hashtbl.fold (fun k acc l -> (k, acc) :: l) groups [] in
    (* sorted so the same group table always serializes to the same bytes *)
    let entries =
      List.sort (fun (a, _) (b, _) -> List.compare Value.compare a b) entries
    in
    W.list
      (fun b (key, acc) ->
        W.list Streams.Wire.write_value b key;
        match acc with
        | CInt i ->
            W.u8 b 0;
            W.int b i
        | CFloat f ->
            W.u8 b 1;
            W.float b f)
      b entries;
    Buffer.contents b
  in
  let load blob =
    let module R = Streams.Wire.R in
    let r = R.of_string blob in
    let v = R.u8 r in
    if v <> 1 then
      raise
        (Streams.Wire.Corrupt
           (Printf.sprintf "Groupby snapshot version %d, expected 1" v));
    let st = Operator.read_stats r in
    let entries =
      R.list
        (fun r ->
          let key = R.list Streams.Wire.read_value r in
          let acc =
            match R.u8 r with
            | 0 -> CInt (R.int r)
            | 1 -> CFloat (R.float r)
            | t ->
                raise
                  (Streams.Wire.Corrupt
                     (Printf.sprintf "Groupby snapshot: bad acc tag %d" t))
          in
          (key, acc))
        r
    in
    R.expect_end r;
    stats := st;
    Hashtbl.reset groups;
    List.iter (fun (k, acc) -> Hashtbl.replace groups k acc) entries
  in
  {
    Operator.name;
    out_schema;
    input_names = [ Schema.stream_name input ];
    push;
    push_batch = Operator.batch_of_push push;
    flush = (fun () -> []);
    data_state_size = (fun () -> Hashtbl.length groups);
    punct_state_size = (fun () -> 0);
    index_state_size = (fun () -> 0);
    state_bytes =
      (fun () ->
        (* key values plus the one accumulator cell per group *)
        Mem_estimate.keyed_table_bytes ~key_width:(List.length key_idxs)
          ~payload_width:1 ~entries:(Hashtbl.length groups));
    stats = (fun () -> !stats);
    persistence = Operator.Snapshot { save; load };
  }
