open Relational
module Element = Streams.Element
module Punctuation = Streams.Punctuation

let create ?(name = "antijoin") ~left ~right ~predicates () =
  let left_name = Schema.stream_name left in
  let right_name = Schema.stream_name right in
  if predicates = [] then invalid_arg "Antijoin.create: no join predicate";
  List.iter
    (fun atom ->
      if
        not
          (Predicate.involves atom left_name
          && Predicate.involves atom right_name)
      then
        invalid_arg
          (Fmt.str "Antijoin.create: predicate %a not between %s and %s"
             Predicate.pp_atom atom left_name right_name))
    predicates;
  let out_schema = Schema.make ~stream:name (Schema.attributes left) in
  let pending = Join_state.create left in
  let right_state = Join_state.create right in
  let right_puncts = Punct_store.create right in
  let left_puncts = Punct_store.create left in
  let stats = ref Operator.empty_stats in
  let now = ref 0 in
  let matches l r = Predicate.eval_all predicates l r in
  (* bindings a left tuple imposes on future right tuples *)
  let right_bindings l =
    List.map
      (fun atom ->
        ( Schema.attr_index right (Predicate.attr_on atom right_name),
          Tuple.get_named l (Predicate.attr_on atom left_name) ))
      predicates
  in
  let has_right_match l =
    Join_state.fold (fun acc r -> acc || matches l r) false right_state
  in
  let emit l = Element.Data (Tuple.make out_schema (Tuple.values l)) in
  let release_proven () =
    let released = ref [] in
    let removed =
      Join_state.purge_if pending (fun l ->
          if Punct_store.covers right_puncts (right_bindings l) then begin
            released := l :: !released;
            true
          end
          else false)
    in
    ignore removed;
    let out = List.rev_map emit !released in
    stats := { !stats with tuples_out = !stats.tuples_out + List.length out };
    out
  in
  let push element =
    incr now;
    let input = Element.stream_name element in
    match element with
    | Element.Data tup when String.equal input left_name ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        if has_right_match tup then begin
          (* disqualified forever *)
          stats := { !stats with tuples_purged = !stats.tuples_purged + 1 };
          []
        end
        else if Punct_store.covers right_puncts (right_bindings tup) then begin
          (* already proven matchless: an immediate anti-join result *)
          stats := { !stats with tuples_out = !stats.tuples_out + 1 };
          [ emit tup ]
        end
        else begin
          Join_state.insert pending tup;
          []
        end
    | Element.Data tup (* right *) ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        let disqualified =
          Join_state.purge_if pending (fun l -> matches l tup)
        in
        stats :=
          { !stats with tuples_purged = !stats.tuples_purged + disqualified };
        (* remember it only if some future left arrival could still need
           disqualifying — dead on arrival otherwise (the auction pattern:
           the left punctuation precedes the right data) *)
        let left_bindings =
          List.map
            (fun atom ->
              ( Schema.attr_index left (Predicate.attr_on atom left_name),
                Tuple.get_named tup (Predicate.attr_on atom right_name) ))
            predicates
        in
        if Punct_store.covers left_puncts left_bindings then
          stats := { !stats with tuples_purged = !stats.tuples_purged + 1 }
        else Join_state.insert right_state tup;
        []
    | Element.Punct p when String.equal input right_name ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        ignore (Punct_store.insert right_puncts ~now:!now p);
        release_proven ()
    | Element.Punct p (* left *) ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        ignore (Punct_store.insert left_puncts ~now:!now p);
        (* right tuples only existed to disqualify future left arrivals;
           once those arrivals are ruled out, drop them *)
        let left_bindings_of r =
          List.map
            (fun atom ->
              ( Schema.attr_index left (Predicate.attr_on atom left_name),
                Tuple.get_named r (Predicate.attr_on atom right_name) ))
            predicates
        in
        let dropped =
          Join_state.purge_if right_state (fun r ->
              Punctuation.covers p (left_bindings_of r))
        in
        stats := { !stats with tuples_purged = !stats.tuples_purged + dropped };
        (* the output is a sub-stream of the left input: forward *)
        stats := { !stats with puncts_out = !stats.puncts_out + 1 };
        [ Element.Punct (Punctuation.make out_schema (Punctuation.patterns p)) ]
  in
  {
    Operator.name;
    out_schema;
    input_names = [ left_name; right_name ];
    push;
    push_batch = Operator.batch_of_push push;
    flush = (fun () -> []);
    data_state_size =
      (fun () -> Join_state.size pending + Join_state.size right_state);
    punct_state_size =
      (fun () -> Punct_store.size right_puncts + Punct_store.size left_puncts);
    index_state_size =
      (fun () ->
        Join_state.index_entries pending + Join_state.index_entries right_state);
    state_bytes =
      (fun () ->
        (Join_state.mem_stats pending).Join_state.approx_bytes
        + (Join_state.mem_stats right_state).Join_state.approx_bytes);
    stats = (fun () -> !stats);
  }
