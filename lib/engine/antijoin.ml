open Relational

(* A thin veneer over the generalized operator family: the anti semi-join
   is {!Outer_join} with [Anti] semantics. The punctuation/flush
   correctness fixes — held forwarding, end-of-stream release, index-based
   probing, exact purge accounting — live there, shared with the outer
   variants. *)
let create ?(name = "antijoin") ?telemetry ?contract ~left ~right ~predicates
    () =
  let side schema =
    {
      Outer_join.name = Schema.stream_name schema;
      schema;
      schemes = [];
    }
  in
  Outer_join.create ~name ?telemetry ?contract ~semantics:Outer_join.Anti
    ~left:(side left) ~right:(side right) ~predicates ()
