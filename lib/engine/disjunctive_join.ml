open Relational
module Punctuation = Streams.Punctuation
module Element = Streams.Element
module Disjunctive = Core.Disjunctive

type side = { name : string; schema : Schema.t }

type slot = { side : side; state : Join_state.t; puncts : Punct_store.t }

let create ?(name = "disjunctive_join") ?(policy = Purge_policy.Eager) ~left
    ~right ~(clause : Disjunctive.clause) () =
  let pair_ok =
    (clause.Disjunctive.left_stream = left.name
    && clause.Disjunctive.right_stream = right.name)
    || (clause.Disjunctive.left_stream = right.name
       && clause.Disjunctive.right_stream = left.name)
  in
  if not pair_ok then
    invalid_arg "Disjunctive_join.create: clause does not join the inputs";
  let l = { side = left; state = Join_state.create left.schema;
            puncts = Punct_store.create left.schema }
  and r = { side = right; state = Join_state.create right.schema;
            puncts = Punct_store.create right.schema } in
  let out_schema = Schema.concat ~stream:name left.schema right.schema in
  let stats = ref Operator.empty_stats in
  let now = ref 0 in
  let pending = ref 0 in
  let this_and_other input =
    if String.equal input l.side.name then (l, r)
    else if String.equal input r.side.name then (r, l)
    else
      invalid_arg
        (Fmt.str "Disjunctive_join %s: unknown input %s" name input)
  in
  (* Per disjunct, the binding a tuple of [mine] imposes on the opposite
     side; the tuple is dead only when every one is covered. *)
  let disjunct_bindings mine other tup =
    List.map
      (fun atom ->
        let my_attr = Predicate.attr_on atom mine.side.name in
        let other_attr = Predicate.attr_on atom other.side.name in
        ( Schema.attr_index other.side.schema other_attr,
          Tuple.get_named tup my_attr ))
      clause.Disjunctive.atoms
  in
  let emit mine cand tup =
    if mine == l then Tuple.concat out_schema tup cand
    else Tuple.concat out_schema cand tup
  in
  let probe mine other tup =
    Join_state.fold
      (fun acc cand ->
        if Disjunctive.joins clause tup cand then emit mine cand tup :: acc
        else acc)
      [] other.state
    |> List.rev
  in
  let sweep () =
    stats := { !stats with purge_rounds = !stats.purge_rounds + 1 };
    let one mine other =
      Join_state.purge_if other.state (fun x ->
          List.for_all
            (fun binding -> Punct_store.covers mine.puncts [ binding ])
            (disjunct_bindings other mine x))
    in
    let removed = one l r + one r l in
    stats := { !stats with tuples_purged = !stats.tuples_purged + removed };
    removed
  in
  let propagate () =
    List.concat_map
      (fun slot ->
        let fresh = ref [] in
        Punct_store.iter
          (fun p ->
            if
              (not (Punct_store.is_forwarded slot.puncts p))
              && not (Join_state.exists_matching slot.state p)
            then begin
              Punct_store.mark_forwarded slot.puncts p;
              let lifted =
                List.map
                  (fun (idx, pat) ->
                    let attr = (Schema.attr_at slot.side.schema idx).Schema.name in
                    (Schema.qualify_attr ~origin:slot.side.name attr, pat))
                  (Punctuation.constraints p)
              in
              fresh := Punctuation.of_constraints out_schema lifted :: !fresh
            end)
          slot.puncts;
        List.rev !fresh)
      [ l; r ]
    |> fun ps ->
    stats := { !stats with puncts_out = !stats.puncts_out + List.length ps };
    List.map (fun p -> Element.Punct p) ps
  in
  let push element =
    incr now;
    let mine, other = this_and_other (Element.stream_name element) in
    match element with
    | Element.Data tup ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        let results = probe mine other tup in
        (* dead on arrival: every disjunct already ruled out by received
           punctuations — emit its results but do not store it *)
        if
          List.for_all
            (fun binding -> Punct_store.covers other.puncts [ binding ])
            (disjunct_bindings mine other tup)
        then stats := { !stats with tuples_purged = !stats.tuples_purged + 1 }
        else Join_state.insert mine.state tup;
        stats :=
          { !stats with tuples_out = !stats.tuples_out + List.length results };
        List.map (fun t -> Element.Data t) results
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        let informative = Punct_store.insert mine.puncts ~now:!now p in
        if informative then incr pending;
        let state_size = Join_state.size l.state + Join_state.size r.state in
        if
          Purge_policy.due policy ~punctuations_pending:!pending ~state_size
        then begin
          pending := 0;
          ignore (sweep ());
          propagate ()
        end
        else []
  in
  let flush () =
    match policy with
    | Purge_policy.Never -> []
    | Purge_policy.Eager | Purge_policy.Lazy _ | Purge_policy.Adaptive _ ->
        if !pending > 0 then begin
          pending := 0;
          ignore (sweep ());
          propagate ()
        end
        else []
  in
  {
    Operator.name;
    out_schema;
    input_names = [ left.name; right.name ];
    push;
    push_batch = Operator.batch_of_push push;
    flush;
    data_state_size =
      (fun () -> Join_state.size l.state + Join_state.size r.state);
    punct_state_size =
      (fun () -> Punct_store.size l.puncts + Punct_store.size r.puncts);
    index_state_size =
      (fun () ->
        Join_state.index_entries l.state + Join_state.index_entries r.state);
    state_bytes =
      (fun () ->
        (Join_state.mem_stats l.state).Join_state.approx_bytes
        + (Join_state.mem_stats r.state).Join_state.approx_bytes);
    stats = (fun () -> !stats);
    persistence = Operator.Volatile "disjunctive join state is not serialized";
  }
