open Relational
module Punctuation = Streams.Punctuation
module Element = Streams.Element

let create ?(name = "project") ~input ~keep () =
  if keep = [] then invalid_arg "Project.create: empty attribute list";
  let idxs = List.map (Schema.attr_index input) keep in
  let out_schema =
    Schema.make ~stream:name (List.map (Schema.attr_at input) idxs)
  in
  let stats = ref Operator.empty_stats in
  let push = function
    | Element.Data tup ->
        stats :=
          {
            !stats with
            tuples_in = !stats.tuples_in + 1;
            tuples_out = !stats.tuples_out + 1;
          };
        [ Element.Data (Tuple.make out_schema (Tuple.project tup idxs)) ]
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        let pinned = Punctuation.const_bindings p in
        if List.for_all (fun (i, _) -> List.mem i idxs) pinned then begin
          let bindings =
            List.map
              (fun (i, v) -> ((Schema.attr_at input i).Schema.name, v))
              pinned
          in
          stats := { !stats with puncts_out = !stats.puncts_out + 1 };
          [ Element.Punct (Punctuation.of_bindings out_schema bindings) ]
        end
        else []
  in
  {
    Operator.name;
    out_schema;
    input_names = [ Schema.stream_name input ];
    push;
    push_batch = Operator.batch_of_push push;
    flush = (fun () -> []);
    data_state_size = (fun () -> 0);
    punct_state_size = (fun () -> 0);
    index_state_size = (fun () -> 0);
    state_bytes = (fun () -> 0);
    stats = (fun () -> !stats);
    persistence = Operator.Stateless;
  }
