module Element = Streams.Element

(* Messages the driver ships to a worker domain. Elements travel in
   batches so the queue's atomics are touched once per ~batch, not once
   per element; each element carries its global sequence number for
   clock-stamping and deterministic output merging. *)
type message =
  | Batch of (int * Element.t) array
  | Barrier of int
  | Stop of int  (** final tick: the worker flushes its tree under it *)

type shard = {
  index : int;
  compiled : Executor.compiled;
  queue : message Spsc.t;
  tel : Telemetry.t;
  events_of : unit -> Obs.Event.t list;
  mutable acked : int;  (** last barrier id this worker reached; under lock *)
  (* The plain mutable fields below are written by the worker domain and
     read by the driver only inside a barrier (worker parked on the
     monitor) or after [Domain.join] — both establish happens-before. *)
  mutable emitted : int;
  mutable outputs : (int * int * Element.t) list;
      (** (global seq, emission rank, element), newest first *)
  mutable out_rank : int;
}

type t = {
  router : Shard_router.t;
  shards : shard array;
  (* Barrier monitor: workers announce arrival on [arrived] and park on
     [released] until [release] passes their barrier id. Blocking (not
     spinning) so a quiesced worker yields its core to the driver — on a
     core-constrained host a spin barrier serializes into scheduler
     timeslices. *)
  lock : Mutex.t;
  arrived : Condition.t;
  released : Condition.t;
  mutable release : int;  (** last barrier id the driver released *)
  watchdog : Obs.Watchdog.t option;
  instrument : bool;
  mutable driver_events : Obs.Event.t list;  (* newest first *)
  mutable merged : (int option * Obs.Event.t) list;
  mutable ran : bool;
}

let create ?policy ?binary_impl ?punct_lifespan ?punct_partner_purge ?watchdog
    ?(instrument = false) ~shards:n query plan =
  if n <= 0 then
    invalid_arg "Parallel_executor.create: shards must be positive";
  let router = Shard_router.create ~shards:n query in
  let shards =
    Array.init n (fun index ->
        let tel, events_of =
          if instrument then
            let sink, contents = Obs.Sink.memory () in
            (Telemetry.create ~sink (), contents)
          else (Telemetry.null, fun () -> [])
        in
        let compiled =
          Executor.compile ?policy ?binary_impl ?punct_lifespan
            ?punct_partner_purge ~telemetry:tel query plan
        in
        {
          index;
          compiled;
          queue = Spsc.create ~capacity:64;
          tel;
          events_of;
          acked = 0;
          emitted = 0;
          outputs = [];
          out_rank = 0;
        })
  in
  {
    router;
    shards;
    lock = Mutex.create ();
    arrived = Condition.create ();
    released = Condition.create ();
    release = 0;
    watchdog;
    instrument;
    driver_events = [];
    merged = [];
    ran = false;
  }

let router t = t.router
let n_shards t = Array.length t.shards

(* Minor collections are stop-the-world across every domain in OCaml 5, so
   their frequency — allocation rate over minor-arena size — is a
   per-collection synchronisation tax that sharding cannot divide (the
   purge path allocates O(state) snapshots per punctuation, so the tax
   grows with state). A larger minor arena makes the syncs rare. Each
   domain owns its arena and spawned domains do NOT inherit a [Gc.set]
   made elsewhere, so this must run inside every domain, workers
   included. The budget is split across the fleet so total arena memory
   stays flat as shards grow. Only ever raises the setting, never
   shrinks a user's. *)
let widen_minor_arena ~shards =
  let budget_words = 32 * 1024 * 1024 in
  let min_minor_words =
    max (1024 * 1024) (min (8 * 1024 * 1024) (budget_words / shards))
  in
  let gc = Gc.get () in
  if gc.Gc.minor_heap_size < min_minor_words then
    Gc.set { gc with Gc.minor_heap_size = min_minor_words }

let worker t shard =
  widen_minor_arena ~shards:(Array.length t.shards);
  let record seq outs =
    List.iter
      (fun o ->
        if Element.is_data o then shard.emitted <- shard.emitted + 1;
        shard.outputs <- (seq, shard.out_rank, o) :: shard.outputs;
        shard.out_rank <- shard.out_rank + 1)
      outs
  in
  let rec loop () =
    match Spsc.pop_wait shard.queue with
    | Batch arr ->
        Array.iter
          (fun (seq, el) ->
            Telemetry.set_clock shard.tel seq;
            record seq (Executor.feed_element shard.compiled el))
          arr;
        loop ()
    | Barrier id ->
        (* Two-phase: announce arrival, then park until the driver has
           finished reading our state and releases the round. *)
        Mutex.lock t.lock;
        shard.acked <- id;
        Condition.broadcast t.arrived;
        while t.release < id do
          Condition.wait t.released t.lock
        done;
        Mutex.unlock t.lock;
        loop ()
    | Stop final_tick ->
        (* Flush events are stamped at the final tick, like a sequential
           run's; flush *outputs* sort after every element's outputs. *)
        Telemetry.set_clock shard.tel final_tick;
        record (final_tick + 1) (Executor.flush_tree shard.compiled)
  in
  loop ()

type result = {
  outputs : Element.t list;
  metrics : Metrics.t;
  consumed : int;
  emitted : int;
}

let sum_over t f = Array.fold_left (fun acc s -> acc + f s.compiled) 0 t.shards
let total_data_state t = sum_over t Executor.total_data_state
let total_punct_state t = sum_over t Executor.total_punct_state
let total_index_state t = sum_over t Executor.total_index_state
let total_state_bytes t = sum_over t Executor.total_state_bytes

let shard_breakdowns t =
  Array.map (fun s -> Executor.state_breakdown s.compiled) t.shards

let state_breakdown t =
  let per = shard_breakdowns t in
  List.mapi
    (fun i (b0 : Executor.breakdown) ->
      Array.fold_left
        (fun (acc : Executor.breakdown) bl ->
          let b : Executor.breakdown = List.nth bl i in
          {
            acc with
            Executor.data = acc.Executor.data + b.Executor.data;
            puncts = acc.Executor.puncts + b.Executor.puncts;
            index = acc.Executor.index + b.Executor.index;
            bytes = acc.Executor.bytes + b.Executor.bytes;
          })
        { b0 with Executor.data = 0; puncts = 0; index = 0; bytes = 0 }
        per)
    per.(0)

let alarms t =
  match t.watchdog with Some w -> Obs.Watchdog.alarms w | None -> []

let events t = t.merged

let run ?(sample_every = 100) ?(label = "run") t elements =
  if t.ran then
    invalid_arg "Parallel_executor.run: a sharded executor runs once";
  t.ran <- true;
  widen_minor_arena ~shards:(Array.length t.shards);
  let n = Array.length t.shards in
  let metrics = Metrics.create ~sample_every () in
  let emit_driver e =
    if t.instrument then t.driver_events <- e :: t.driver_events
  in
  emit_driver (Obs.Event.Run_start { tick = 0; label });
  let domains =
    Array.map (fun s -> Domain.spawn (fun () -> worker t s)) t.shards
  in
  let batch_cap = 256 in
  let bufs = Array.make n [] in
  let buf_len = Array.make n 0 in
  let flush_buf k =
    if buf_len.(k) > 0 then begin
      Spsc.push t.shards.(k).queue (Batch (Array.of_list (List.rev bufs.(k))));
      bufs.(k) <- [];
      buf_len.(k) <- 0
    end
  in
  let send k entry =
    bufs.(k) <- entry :: bufs.(k);
    buf_len.(k) <- buf_len.(k) + 1;
    if buf_len.(k) >= batch_cap then flush_buf k
  in
  let barrier_id = ref 0 in
  let quiesce () =
    incr barrier_id;
    let id = !barrier_id in
    for k = 0 to n - 1 do
      flush_buf k;
      Spsc.push t.shards.(k).queue (Barrier id)
    done;
    Mutex.lock t.lock;
    while Array.exists (fun (s : shard) -> s.acked < id) t.shards do
      Condition.wait t.arrived t.lock
    done;
    Mutex.unlock t.lock
  in
  let release () =
    Mutex.lock t.lock;
    t.release <- !barrier_id;
    Condition.broadcast t.released;
    Mutex.unlock t.lock
  in
  let emitted_total () =
    Array.fold_left (fun acc (s : shard) -> acc + s.emitted) 0 t.shards
  in
  (* Mirror of Executor.run's [sample]: one global Sample event, then one
     watchdog observation per operator with its state summed across
     shards under the sequential operator names — so an unsafe plan trips
     the same alarms at the same ticks. Callable only while quiescent. *)
  let sample_and_watch ~tick =
    if t.instrument then
      emit_driver
        (Obs.Event.Sample
           {
             tick;
             data_state = total_data_state t;
             punct_state = total_punct_state t;
             index_state = total_index_state t;
             state_bytes = total_state_bytes t;
             emitted = emitted_total ();
           });
    match t.watchdog with
    | None -> ()
    | Some w ->
        List.iter
          (fun (b : Executor.breakdown) ->
            match
              Obs.Watchdog.observe w ~op:b.op_name ~tick ~size:b.data
                ~unreachable:
                  (Executor.unreachable_inputs t.shards.(0).compiled b.op_name)
            with
            | None -> ()
            | Some (a : Obs.Watchdog.alarm) ->
                emit_driver
                  (Obs.Event.Alarm
                     {
                       tick = a.tick;
                       op = a.op;
                       slope = a.slope;
                       size = a.size;
                       unreachable = a.unreachable;
                     }))
          (state_breakdown t)
  in
  let observe_metrics
      (record :
        Metrics.t ->
        tick:int ->
        data_state:int ->
        punct_state:int ->
        ?index_state:int ->
        ?state_bytes:int ->
        emitted:int ->
        unit ->
        unit) ~tick =
    record metrics ~tick ~data_state:(total_data_state t)
      ~punct_state:(total_punct_state t)
      ~index_state:(total_index_state t)
      ~state_bytes:(total_state_bytes t) ~emitted:(emitted_total ()) ()
  in
  let consumed = ref 0 in
  Seq.iter
    (fun el ->
      incr consumed;
      let seq = !consumed in
      (match Shard_router.route_element t.router el with
      | Shard_router.Local k -> send k (seq, el)
      | Shard_router.Broadcast ->
          for k = 0 to n - 1 do
            send k (seq, el)
          done);
      if !consumed mod sample_every = 0 then begin
        quiesce ();
        observe_metrics Metrics.observe ~tick:!consumed;
        sample_and_watch ~tick:!consumed;
        release ()
      end)
    elements;
  for k = 0 to n - 1 do
    flush_buf k;
    Spsc.push t.shards.(k).queue (Stop !consumed)
  done;
  Array.iter Domain.join domains;
  observe_metrics Metrics.flush ~tick:!consumed;
  sample_and_watch ~tick:!consumed;
  emit_driver (Obs.Event.Run_end { tick = !consumed; emitted = emitted_total () });
  let outputs =
    Array.to_list t.shards
    |> List.concat_map (fun s ->
           List.rev_map (fun (seq, rank, el) -> (seq, s.index, rank, el))
             s.outputs)
    |> List.sort (fun (s1, h1, r1, _) (s2, h2, r2, _) ->
           compare (s1, h1, r1) (s2, h2, r2))
    |> List.map (fun (_, _, _, el) -> el)
  in
  if t.instrument then begin
    (* Merged trace order: tick, then shard, then per-shard emission
       index; driver events sort after every worker event of their tick
       (a Sample describes the tick's *completed* state). *)
    let tagged =
      Array.to_list t.shards
      |> List.concat_map (fun s ->
             List.mapi
               (fun i e -> (Obs.Event.tick_of e, s.index, i, Some s.index, e))
               (s.events_of ()))
    in
    let driver =
      List.rev t.driver_events
      |> List.mapi (fun i e -> (Obs.Event.tick_of e, max_int, i, None, e))
    in
    t.merged <-
      List.sort
        (fun (t1, s1, i1, _, _) (t2, s2, i2, _, _) ->
          compare (t1, s1, i1) (t2, s2, i2))
        (tagged @ driver)
      |> List.map (fun (_, _, _, tag, e) -> (tag, e))
  end;
  Array.iter (fun s -> Telemetry.close s.tel) t.shards;
  { outputs; metrics; consumed = !consumed; emitted = emitted_total () }

let report ?(meta = []) t (r : result) =
  let c0 = t.shards.(0).compiled in
  let per_shard_ops =
    Array.map (fun s -> Executor.operators ~c:s.compiled) t.shards
  in
  let sum_alists alists =
    match alists with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun acc alist -> List.map2 (fun (k, v) (_, v') -> (k, v + v')) acc alist)
          first rest
  in
  let operators =
    List.mapi
      (fun i (op0 : Operator.t) ->
        let nth_op ops : Operator.t = List.nth ops i in
        let stats =
          Array.to_list per_shard_ops
          |> List.map (fun ops ->
                 Operator.stats_to_alist ((nth_op ops).Operator.stats ()))
          |> sum_alists
        in
        let sum_state f =
          Array.fold_left (fun acc ops -> acc + f (nth_op ops)) 0 per_shard_ops
        in
        {
          Obs.Report.name = op0.Operator.name;
          inputs = op0.Operator.input_names;
          unreachable_inputs =
            Executor.unreachable_inputs c0 op0.Operator.name;
          stats;
          state =
            [
              ("data", sum_state (fun op -> op.Operator.data_state_size ()));
              ("puncts", sum_state (fun op -> op.Operator.punct_state_size ()));
              ("index", sum_state (fun op -> op.Operator.index_state_size ()));
              ("bytes", sum_state (fun op -> op.Operator.state_bytes ()));
            ];
        })
      (Executor.operators ~c:c0)
  in
  {
    Obs.Report.meta =
      (("shards", Obs.Json.Int (n_shards t)) :: meta)
      @ [
          ("consumed", Obs.Json.Int r.consumed);
          ("emitted", Obs.Json.Int r.emitted);
        ];
    operators;
    registry =
      Obs.Registry.merged
        (Array.to_list t.shards |> List.map (fun s -> Telemetry.registry s.tel));
    series = Executor.series_json r.metrics;
    alarms = alarms t;
  }
