module Element = Streams.Element
module Fault_injector = Streams.Fault_injector

(* Messages the driver ships to a worker domain. Elements travel in
   batches so the queue's atomics are touched once per ~batch, not once
   per element; each element carries its global sequence number for
   clock-stamping and deterministic output merging. *)
type message =
  | Batch of (int * Element.t) array
  | Barrier of int
  | Stop of int  (** final tick: the worker flushes its tree under it *)

exception Shard_failed of { shard : int; attempts : int; reason : string }

(* One supervised restart, for post-run inspection (the soak harness runs
   uninstrumented and still asserts bounded replay). [replayed] counts
   elements, not batches: with checkpointing armed it is bounded by the
   checkpoint interval. *)
type restart = {
  shard : int;
  attempt : int;
  replayed : int;
  restored : bool;  (** state came from a checkpoint, not a full replay *)
}

let queue_capacity = 64

type shard = {
  index : int;
  (* One *incarnation* of a shard = (compiled, queue, tel, contract,
     domain). A crash retires the incarnation wholesale: the replacement
     gets fresh state everywhere and rebuilds itself by replaying
     [history]. All incarnation fields are therefore mutable. *)
  mutable compiled : Executor.compiled;
  mutable queue : message Spsc.t;
  mutable tel : Telemetry.t;
  mutable events_of : unit -> Obs.Event.t list;
  mutable contract : Contract.t option;
  mutable acked : int;  (** last barrier id this worker reached; under lock *)
  (* The plain mutable fields below are written by the worker domain and
     read by the driver only inside a barrier (worker parked on the
     monitor) or after [Domain.join] — both establish happens-before. *)
  mutable emitted : int;
  mutable outputs : (int * int * Element.t) list;
      (** (global seq, emission rank, element), newest first *)
  mutable out_rank : int;
  (* Supervision. [history] is the replay log: every Batch sent to this
     shard since the last checkpoint cut (or run start), in send order
     (barriers and Stop are control flow, not state, and are not
     replayed). A shard's state is a pure function of its batch sequence,
     so replaying [history] into a fresh incarnation — on top of the last
     checkpoint's restored state when one exists — reproduces the dead
     one's state, outputs and events exactly. A successful checkpoint
     truncates the queue, bounding both replay time and the log's
     memory. *)
  history : message Queue.t;
  mutable history_elems : int;  (** elements across the queued batches *)
  mutable history_bytes : int;  (** approximate resident bytes of the log *)
  (* Per-shard trace/metrics carried over a checkpoint restore: the fresh
     incarnation regenerates only the post-cut suffix, so the pre-cut
     events and registry live here (captured at the cut) and are merged
     back in at read time. *)
  mutable base_events : Obs.Event.t list;
  mutable base_reg : Obs.Registry.t option;
  mutable domain : unit Domain.t option;
  mutable dead : exn option;  (** the incarnation's post-mortem; under lock *)
  mutable restarts : int;
}

type t = {
  router : Shard_router.t;
  shards : shard array;
  (* Barrier monitor: workers announce arrival on [arrived] and park on
     [released] until [release] passes their barrier id. Blocking (not
     spinning) so a quiesced worker yields its core to the driver — on a
     core-constrained host a spin barrier serializes into scheduler
     timeslices. A dying worker also broadcasts [arrived] (with [dead]
     set), so the driver can never wait forever on a crashed shard. *)
  lock : Mutex.t;
  arrived : Condition.t;
  released : Condition.t;
  mutable release : int;  (** last barrier id the driver released *)
  watchdog : Obs.Watchdog.t option;
  instrument : bool;
  (* Deterministic worker-kill faults: each is one-shot via its armed
     flag, so the restarted incarnation replays the same sequence number
     unharmed — but a later schedule entry can hit the same shard again
     (kill storms). *)
  kills : (Fault_injector.kill * bool Atomic.t) list;
  max_restarts : int;
  checkpoint : Checkpoint.config option;
  resume : Checkpoint.t option;
  mutable restarts_log : restart list;  (* newest first *)
  contract_config : Contract.config option;
  driver_contract : Contract.t option;
      (* stall tracking lives with the driver, which sees the whole input;
         per-shard contracts (inside [shards]) handle late data and hold
         the shedders, each under 1/n of the state budget *)
  mk_tel : unit -> Telemetry.t * (unit -> Obs.Event.t list);
  mk_contract : unit -> Contract.t option;
  compile_shard : Telemetry.t -> Contract.t option -> Executor.compiled;
  driver_reg : Obs.Registry.t;
      (* driver-side metrics (its own GC deltas): shard registries die with
         their incarnation, this one spans the run and joins them in every
         merge *)
  mutable driver_events : Obs.Event.t list;  (* newest first *)
  mutable merged : (int option * Obs.Event.t) list;
  mutable ran : bool;
}

(* --- operator snapshots -------------------------------------------------- *)

(* Capture one shard's operator state as checkpoint blobs. Only callable
   while the worker is parked (barrier) or reaped. Fails loudly on an
   operator that cannot serialize — a checkpoint with a hole is worse than
   no checkpoint. *)
let snapshot_shard (s : shard) : Checkpoint.shard =
  let ops =
    List.map
      (fun (op : Operator.t) ->
        match op.Operator.persistence with
        | Operator.Stateless -> (op.Operator.name, "")
        | Operator.Volatile reason ->
            invalid_arg
              (Printf.sprintf
                 "checkpoint: operator %s does not support snapshots (%s)"
                 op.Operator.name reason)
        | Operator.Snapshot { save; _ } -> (op.Operator.name, save ()))
      (Executor.operators ~c:s.compiled)
  in
  { Checkpoint.ops; emitted = s.emitted; out_rank = s.out_rank }

(* Restore a (freshly compiled, not yet spawned) incarnation's operator
   state from a checkpoint's blobs. The blobs were written by an
   identically compiled plan, so names must line up positionally. *)
let apply_snapshot (s : shard) (snap : Checkpoint.shard) =
  let ops = Executor.operators ~c:s.compiled in
  if List.length ops <> List.length snap.Checkpoint.ops then
    raise
      (Checkpoint.Invalid
         (Printf.sprintf "checkpoint has %d operator blobs, plan has %d"
            (List.length snap.Checkpoint.ops)
            (List.length ops)));
  List.iter2
    (fun (op : Operator.t) (name, blob) ->
      if not (String.equal op.Operator.name name) then
        raise
          (Checkpoint.Invalid
             (Printf.sprintf "checkpoint blob for %S, plan operator is %S"
                name op.Operator.name));
      match op.Operator.persistence with
      | Operator.Stateless ->
          if blob <> "" then
            raise
              (Checkpoint.Invalid
                 (Printf.sprintf "non-empty blob for stateless operator %s"
                    name))
      | Operator.Volatile reason ->
          raise
            (Checkpoint.Invalid
               (Printf.sprintf "operator %s cannot restore (%s)" name reason))
      | Operator.Snapshot { load; _ } -> (
          try load blob
          with Streams.Wire.Corrupt m ->
            raise
              (Checkpoint.Invalid
                 (Printf.sprintf "operator %s snapshot: %s" name m))))
    ops snap.Checkpoint.ops;
  s.emitted <- snap.Checkpoint.emitted;
  s.out_rank <- snap.Checkpoint.out_rank;
  s.outputs <- []

let snapshot_bytes (snap : Checkpoint.shard) =
  List.fold_left
    (fun acc (_, blob) -> acc + String.length blob)
    0 snap.Checkpoint.ops

let create ?(config = Executor.Config.default) ?watchdog
    ?(instrument = false) ?contract_config ?(kills = []) ?(max_restarts = 2)
    ?checkpoint ?resume ~shards:n query plan =
  if n <= 0 then
    invalid_arg "Parallel_executor.create: shards must be positive";
  if max_restarts < 0 then
    invalid_arg "Parallel_executor.create: max_restarts must be >= 0";
  let router = Shard_router.create ~shards:n query in
  if not (Shard_router.sound_for router query) then
    invalid_arg
      "Parallel_executor.create: outer/anti join kinds require exact \
       partitioning";
  let mk_tel () =
    if instrument then
      let sink, contents = Obs.Sink.memory () in
      (Telemetry.create ~sink (), contents)
    else (Telemetry.null, fun () -> [])
  in
  let mk_contract () =
    Option.map
      (fun (cfg : Contract.config) ->
        Contract.create
          {
            cfg with
            Contract.state_budget_bytes =
              Option.map (fun b -> max 1 (b / n)) cfg.Contract.state_budget_bytes;
          })
      contract_config
  in
  (* Per-shard telemetry/contract override whatever the caller's config
     carried: each incarnation owns its handles. *)
  let compile_shard tel contract =
    Executor.compile
      ~config:{ config with Executor.Config.telemetry = tel; contract }
      query plan
  in
  let shards =
    Array.init n (fun index ->
        let tel, events_of = mk_tel () in
        let contract = mk_contract () in
        {
          index;
          compiled = compile_shard tel contract;
          queue = Spsc.create ~capacity:queue_capacity;
          tel;
          events_of;
          contract;
          acked = 0;
          emitted = 0;
          outputs = [];
          out_rank = 0;
          history = Queue.create ();
          history_elems = 0;
          history_bytes = 0;
          base_events = [];
          base_reg = None;
          domain = None;
          dead = None;
          restarts = 0;
        })
  in
  (* A durable resume restores every shard's operator state from the
     checkpoint before any domain is spawned; [run] then skips the consumed
     input prefix and continues from the cut. *)
  (match resume with
  | None -> ()
  | Some (c : Checkpoint.t) ->
      if Array.length c.Checkpoint.shards <> n then
        raise
          (Checkpoint.Invalid
             (Printf.sprintf "checkpoint has %d shards, run has %d"
                (Array.length c.Checkpoint.shards)
                n));
      Array.iteri
        (fun k s -> apply_snapshot s c.Checkpoint.shards.(k))
        shards);
  let driver_contract = Option.map Contract.create contract_config in
  Option.iter
    (fun ct -> Executor.register_sources ct shards.(0).compiled)
    driver_contract;
  {
    router;
    shards;
    lock = Mutex.create ();
    arrived = Condition.create ();
    released = Condition.create ();
    release = 0;
    watchdog;
    instrument;
    kills = List.map (fun k -> (k, Atomic.make true)) kills;
    max_restarts;
    checkpoint;
    resume;
    restarts_log = [];
    contract_config;
    driver_contract;
    mk_tel;
    mk_contract;
    compile_shard;
    driver_reg = Obs.Registry.create ();
    driver_events = [];
    merged = [];
    ran = false;
  }

let router t = t.router
let n_shards t = Array.length t.shards

let crash_count t =
  Array.fold_left (fun acc s -> acc + s.restarts) 0 t.shards

let restarts_log t = List.rev t.restarts_log

let history_elems t =
  Array.fold_left (fun acc s -> acc + s.history_elems) 0 t.shards

let history_bytes t =
  Array.fold_left (fun acc s -> acc + s.history_bytes) 0 t.shards

(* Minor collections are stop-the-world across every domain in OCaml 5, so
   their frequency — allocation rate over minor-arena size — is a
   per-collection synchronisation tax that sharding cannot divide (the
   purge path allocates O(state) snapshots per punctuation, so the tax
   grows with state). A larger minor arena makes the syncs rare. Each
   domain owns its arena and spawned domains do NOT inherit a [Gc.set]
   made elsewhere, so this must run inside every domain, workers
   included. The budget is split across the fleet so total arena memory
   stays flat as shards grow. Only ever raises the setting, never
   shrinks a user's. *)
let widen_minor_arena ~shards =
  let budget_words = 32 * 1024 * 1024 in
  let min_minor_words =
    max (1024 * 1024) (min (8 * 1024 * 1024) (budget_words / shards))
  in
  let gc = Gc.get () in
  if gc.Gc.minor_heap_size < min_minor_words then
    Gc.set { gc with Gc.minor_heap_size = min_minor_words }

let worker t shard =
  widen_minor_arena ~shards:(Array.length t.shards);
  let record seq outs =
    List.iter
      (fun o ->
        if Element.is_data o then shard.emitted <- shard.emitted + 1;
        shard.outputs <- (seq, shard.out_rank, o) :: shard.outputs;
        shard.out_rank <- shard.out_rank + 1)
      outs
  in
  let rec loop () =
    match Spsc.pop_wait shard.queue with
    | `Closed -> ()
    | `Item (Batch arr) ->
        (* Feed the whole batch through the operators' push_batch fast
           path. Outputs are recorded under the batch's last seq — the
           merge key stays deterministic (outputs of seq s still precede
           outputs of any s' > s; within-batch attribution is coarser, and
           cross-run comparisons are by output multiset/hash anyway). A
           pending kill splits the batch: the prefix strictly before the
           kill seq is fed batched, then the kill fires exactly where the
           per-element path would have raised. *)
        (* Earliest armed kill aimed at this shard that lands in this
           batch. The whole schedule is scanned: two kills of the same
           shard at different sequence points both fire (the second hits
           the recovered incarnation). *)
        let kill_at =
          List.fold_left
            (fun best (k, armed) ->
              if shard.index = k.Fault_injector.shard && Atomic.get armed then begin
                let hit = ref None in
                Array.iteri
                  (fun i (seq, _) ->
                    if !hit = None && seq >= k.Fault_injector.at_seq then
                      hit := Some i)
                  arr;
                match (!hit, best) with
                | Some i, Some (j, _, _) when i >= j -> best
                | Some i, _ -> Some (i, k, armed)
                | None, _ -> best
              end
              else best)
            None t.kills
        in
        let feed_run lo hi =
          (* [lo, hi): contiguous slice of the batch *)
          if hi > lo then begin
            let last_seq, _ = arr.(hi - 1) in
            Telemetry.set_clock shard.tel last_seq;
            let els = Array.init (hi - lo) (fun i -> snd arr.(lo + i)) in
            record last_seq (Executor.feed_batch shard.compiled els)
          end
        in
        (match kill_at with
        | Some (i, k, armed) ->
            feed_run 0 i;
            if Atomic.compare_and_set armed true false then
              raise (Fault_injector.Injected_kill k)
        | None -> feed_run 0 (Array.length arr));
        loop ()
    | `Item (Barrier id) ->
        (* Two-phase: announce arrival, then park until the driver has
           finished reading our state and releases the round. *)
        Mutex.lock t.lock;
        shard.acked <- id;
        Condition.broadcast t.arrived;
        while t.release < id do
          Condition.wait t.released t.lock
        done;
        Mutex.unlock t.lock;
        loop ()
    | `Item (Stop final_tick) ->
        (* Flush events are stamped at the final tick, like a sequential
           run's; flush *outputs* sort after every element's outputs. *)
        Telemetry.set_clock shard.tel final_tick;
        record (final_tick + 1) (Executor.flush_tree shard.compiled)
  in
  try loop ()
  with e ->
    (* Post-mortem protocol: poison the queue first (wakes a driver parked
       on a full push), then publish the cause under the lock and wake a
       driver parked on the barrier. The driver never waits forever on a
       dead peer. *)
    Spsc.close shard.queue;
    Mutex.lock t.lock;
    shard.dead <- Some e;
    Condition.broadcast t.arrived;
    Mutex.unlock t.lock

type result = {
  outputs : Element.t list;
  metrics : Metrics.t;
  consumed : int;
  emitted : int;
}

let sum_over t f = Array.fold_left (fun acc s -> acc + f s.compiled) 0 t.shards
let total_data_state t = sum_over t Executor.total_data_state
let total_punct_state t = sum_over t Executor.total_punct_state
let total_index_state t = sum_over t Executor.total_index_state
let total_state_bytes t = sum_over t Executor.total_state_bytes

let shard_breakdowns t =
  Array.map (fun s -> Executor.state_breakdown s.compiled) t.shards

let state_breakdown t =
  let per = shard_breakdowns t in
  List.mapi
    (fun i (b0 : Executor.breakdown) ->
      Array.fold_left
        (fun (acc : Executor.breakdown) bl ->
          let b : Executor.breakdown = List.nth bl i in
          {
            acc with
            Executor.data = acc.Executor.data + b.Executor.data;
            puncts = acc.Executor.puncts + b.Executor.puncts;
            index = acc.Executor.index + b.Executor.index;
            bytes = acc.Executor.bytes + b.Executor.bytes;
          })
        { b0 with Executor.data = 0; puncts = 0; index = 0; bytes = 0 }
        per)
    per.(0)

let alarms t =
  match t.watchdog with Some w -> Obs.Watchdog.alarms w | None -> []

let events t = t.merged

(* A shard's full-run registry view: the live incarnation's registry,
   joined with the pre-checkpoint baseline when a restore cut its history
   short. The baseline's gauges were cleared at capture (gauges are
   levels, and the live side's are authoritative), so Sum-aggregated
   levels are not double-counted. *)
let shard_registry_view (s : shard) =
  let live = Telemetry.registry s.tel in
  match s.base_reg with
  | None -> live
  | Some base -> Obs.Registry.merged [ base; live ]

(* The run's registry view: every live shard's registry joined with the
   driver's own. Counters add, gauges combine under their declared
   aggregation, histograms merge — the same fold {!report} publishes. *)
let merged_registry t =
  Obs.Registry.merged
    (t.driver_reg :: (Array.to_list t.shards |> List.map shard_registry_view))

let run ?(sample_every = 100) ?(label = "run") ?exporter ?on_commit t elements
    =
  if t.ran then
    invalid_arg "Parallel_executor.run: a sharded executor runs once";
  t.ran <- true;
  (match (t.checkpoint, on_commit) with
  | Some { Checkpoint.dir = Some _; _ }, Some _ ->
      invalid_arg
        "Parallel_executor.run: on_commit discards committed outputs, a \
         durable checkpoint must retain them"
  | _ -> ());
  widen_minor_arena ~shards:(Array.length t.shards);
  let n = Array.length t.shards in
  let metrics = Metrics.create ~sample_every () in
  let emit_driver e =
    if t.instrument then t.driver_events <- e :: t.driver_events
  in
  emit_driver (Obs.Event.Run_start { tick = 0; label });
  Array.iter
    (fun s -> s.domain <- Some (Domain.spawn (fun () -> worker t s)))
    t.shards;
  let consumed = ref 0 in
  (* --- checkpoint state ----------------------------------------------- *)
  (* The last cut, for crash restore: operator blobs per shard plus the
     trace/registry baselines captured with them. [committed] owns every
     output drained at a cut (ascending merge order) — unless [on_commit]
     streams them out instead. *)
  let last_ckpt = ref None in
  let ckpt_events = Array.make n [] in
  let ckpt_reg = Array.make n None in
  let committed = ref [] in
  (* newest chunk first; each chunk ascending *)
  let commit_chunk chunk =
    match on_commit with
    | Some f -> f (List.map (fun (_, _, _, el) -> el) chunk)
    | None -> committed := chunk :: !committed
  in
  let elements =
    match t.resume with
    | None -> elements
    | Some (c : Checkpoint.t) ->
        (* continue the cut: counters pick up where the checkpoint left
           off, committed outputs are owned again, and the input prefix
           the checkpoint already consumed is skipped (the caller passes
           the same deterministic trace). *)
        consumed := c.Checkpoint.consumed;
        last_ckpt := Some c;
        commit_chunk c.Checkpoint.committed;
        Seq.drop c.Checkpoint.consumed elements
  in
  (* --- supervision --------------------------------------------------- *)
  let abort_all () =
    (* Terminal teardown: poison every queue, lift every barrier, reap
       every domain — so an exception can propagate out of [run] without
       leaving worker domains parked forever. *)
    Array.iter (fun (s : shard) -> Spsc.close s.queue) t.shards;
    Mutex.lock t.lock;
    t.release <- max_int;
    Condition.broadcast t.released;
    Mutex.unlock t.lock;
    Array.iter
      (fun (s : shard) ->
        match s.domain with
        | Some d ->
            (try Domain.join d with _ -> ());
            s.domain <- None
        | None -> ())
      t.shards
  in
  (* Restart a crashed shard: reap the dead incarnation, back off, build a
     fresh one, replay its batch history. Contract failures are poison —
     deterministic replay would only re-raise them, so they fail the run
     instead of burning retries. *)
  let rec handle_crash k =
    let s = t.shards.(k) in
    Mutex.lock t.lock;
    while s.dead = None do
      Condition.wait t.arrived t.lock
    done;
    let cause = match s.dead with Some e -> e | None -> assert false in
    Mutex.unlock t.lock;
    (match s.domain with
    | Some d ->
        (try Domain.join d with _ -> ());
        s.domain <- None
    | None -> ());
    (match cause with
    | Contract.Violation_failure _ ->
        abort_all ();
        raise cause
    | _ -> ());
    let reason = Printexc.to_string cause in
    if s.restarts >= t.max_restarts then begin
      let attempts = s.restarts in
      emit_driver
        (Obs.Event.Shard_crash
           { tick = !consumed; shard = k; reason; attempt = attempts + 1 });
      abort_all ();
      raise (Shard_failed { shard = k; attempts; reason })
    end;
    s.restarts <- s.restarts + 1;
    let attempt = s.restarts in
    emit_driver
      (Obs.Event.Shard_crash { tick = !consumed; shard = k; reason; attempt });
    (* bounded exponential backoff before the respawn *)
    Unix.sleepf (0.005 *. float_of_int (1 lsl min (attempt - 1) 6));
    let tel, events_of = t.mk_tel () in
    let contract = t.mk_contract () in
    s.tel <- tel;
    s.events_of <- events_of;
    s.contract <- contract;
    s.compiled <- t.compile_shard tel contract;
    s.queue <- Spsc.create ~capacity:queue_capacity;
    (* The dead incarnation's post-cut outputs, counters and events are
       discarded wholesale: determinism means the replay reproduces every
       one of them, and keeping both would double-count. *)
    s.outputs <- [];
    s.out_rank <- 0;
    s.emitted <- 0;
    s.dead <- None;
    (* With a checkpoint, recovery is restore + suffix: operator state
       comes from the last cut's blobs and only the batches since then
       (the truncated history) are replayed — work bounded by the
       checkpoint interval, not the run length. *)
    (match !last_ckpt with
    | None -> ()
    | Some (c : Checkpoint.t) ->
        let t0 = Unix.gettimeofday () in
        let snap = c.Checkpoint.shards.(k) in
        apply_snapshot s snap;
        s.base_events <- ckpt_events.(k);
        s.base_reg <- ckpt_reg.(k);
        emit_driver
          (Obs.Event.Restore
             {
               tick = !consumed;
               shard = k;
               bytes = snapshot_bytes snap;
               duration_ns =
                 int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
             }));
    Mutex.lock t.lock;
    s.acked <- t.release;
    Mutex.unlock t.lock;
    s.domain <- Some (Domain.spawn (fun () -> worker t s));
    let replayed = s.history_elems in
    t.restarts_log <-
      { shard = k; attempt; replayed; restored = !last_ckpt <> None }
      :: t.restarts_log;
    let rec replay = function
      | [] ->
          emit_driver
            (Obs.Event.Shard_restart
               { tick = !consumed; shard = k; attempt; replayed });
          `Ok
      | msg :: rest -> (
          match Spsc.push s.queue msg with
          | `Ok -> replay rest
          | `Closed -> `Died)
    in
    match replay (List.of_seq (Queue.to_seq s.history)) with
    | `Ok -> ()
    | `Died -> handle_crash k
  in
  let rec send_ctl k msg =
    match Spsc.push t.shards.(k).queue msg with
    | `Ok -> ()
    | `Closed ->
        handle_crash k;
        send_ctl k msg
  in
  let send_batch k arr =
    let s = t.shards.(k) in
    let msg = Batch arr in
    (* Record before pushing: if the push finds the worker dead, the
       restart's replay must include this batch. The byte figure is a
       word-counting trend estimate (boxed pair + element header per
       entry), not a measurement. *)
    Queue.push msg s.history;
    s.history_elems <- s.history_elems + Array.length arr;
    s.history_bytes <- s.history_bytes + 64 + (48 * Array.length arr);
    match Spsc.push s.queue msg with
    | `Ok -> ()
    | `Closed -> handle_crash k
  in
  (* --- batching ------------------------------------------------------- *)
  let batch_cap = 256 in
  let bufs = Array.make n [] in
  let buf_len = Array.make n 0 in
  let flush_buf k =
    if buf_len.(k) > 0 then begin
      send_batch k (Array.of_list (List.rev bufs.(k)));
      bufs.(k) <- [];
      buf_len.(k) <- 0
    end
  in
  let send k entry =
    bufs.(k) <- entry :: bufs.(k);
    buf_len.(k) <- buf_len.(k) + 1;
    if buf_len.(k) >= batch_cap then flush_buf k
  in
  let barrier_id =
    ref
      (match t.resume with
      | Some c -> c.Checkpoint.barrier
      | None -> 0)
  in
  let grid = ref 0 in
  let quiesce () =
    incr barrier_id;
    let id = !barrier_id in
    for k = 0 to n - 1 do
      flush_buf k;
      send_ctl k (Barrier id)
    done;
    (* Wait until every shard is parked at the barrier — restarting any
       that die on the way. A worker that acked cannot crash while parked
       (it runs no code until released), so an ack is stable. *)
    let rec await () =
      Mutex.lock t.lock;
      while
        Array.exists
          (fun (s : shard) -> s.dead = None && s.acked < id)
          t.shards
        && Array.for_all (fun (s : shard) -> s.dead = None) t.shards
      do
        Condition.wait t.arrived t.lock
      done;
      let dead =
        Array.to_list t.shards
        |> List.filter_map (fun (s : shard) ->
               if s.dead <> None then Some s.index else None)
      in
      Mutex.unlock t.lock;
      match dead with
      | [] -> ()
      | ks ->
          List.iter
            (fun k ->
              handle_crash k;
              send_ctl k (Barrier id))
            ks;
          await ()
    in
    await ()
  in
  let release () =
    Mutex.lock t.lock;
    t.release <- !barrier_id;
    Condition.broadcast t.released;
    Mutex.unlock t.lock
  in
  (* Take a punctuation-aligned cut. Only called between [quiesce] and
     [release]: workers are parked, every queue is drained, so per-shard
     operator state is exactly the bounded live set the safety theorem is
     about. The cut owns everything before it — operator blobs, emit
     counters, drained outputs, trace/registry baselines — and the replay
     histories are then truncated, so any later crash replays at most one
     checkpoint interval of input. *)
  let take_checkpoint ~tick =
    match t.checkpoint with
    | None -> ()
    | Some cfg ->
        let t0 = Unix.gettimeofday () in
        let shards_snap = Array.map snapshot_shard t.shards in
        let chunk =
          Array.to_list t.shards
          |> List.concat_map (fun s ->
                 List.rev_map
                   (fun (seq, rank, el) -> (seq, s.index, rank, el))
                   s.outputs)
          |> List.sort (fun (s1, h1, r1, _) (s2, h2, r2, _) ->
                 compare (s1, h1, r1) (s2, h2, r2))
        in
        Array.iter (fun (s : shard) -> s.outputs <- []) t.shards;
        commit_chunk chunk;
        Array.iteri
          (fun k s ->
            ckpt_events.(k) <- s.base_events @ s.events_of ();
            let copy = Obs.Registry.merged [ shard_registry_view s ] in
            Obs.Registry.clear_gauges copy;
            ckpt_reg.(k) <- Some copy)
          t.shards;
        let mk committed =
          { Checkpoint.barrier = !barrier_id; consumed = tick;
            shards = shards_snap; committed }
        in
        let bytes =
          match cfg.Checkpoint.dir with
          | None ->
              Array.fold_left
                (fun acc s -> acc + snapshot_bytes s)
                0 shards_snap
          | Some dir ->
              (* the durable image needs every committed output so a
                 resumed process reproduces the full output multiset *)
              let full = mk (List.concat (List.rev !committed)) in
              let _path, bytes =
                Checkpoint.save ~dir
                  ~fingerprint:cfg.Checkpoint.fingerprint full
              in
              bytes
        in
        (* the in-memory cut used for crash restore does not need the
           committed outputs — the driver already owns them *)
        last_ckpt := Some (mk []);
        Array.iter
          (fun s ->
            Queue.clear s.history;
            s.history_elems <- 0;
            s.history_bytes <- 0)
          t.shards;
        Obs.Registry.set_gauge ~agg:Obs.Counters.Sum t.driver_reg
          "checkpoint_bytes" bytes;
        emit_driver
          (Obs.Event.Checkpoint
             {
               tick;
               barrier = !barrier_id;
               bytes;
               duration_ns =
                 int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
             })
  in
  let emitted_total () =
    Array.fold_left (fun acc (s : shard) -> acc + s.emitted) 0 t.shards
  in
  (* Mirror of Executor.run's [sample]: one global Sample event, then one
     watchdog observation per operator with its state summed across
     shards under the sequential operator names — so an unsafe plan trips
     the same alarms at the same ticks. Callable only while quiescent. *)
  let sample_and_watch ~tick =
    if t.instrument then
      emit_driver
        (Obs.Event.Sample
           {
             tick;
             data_state = total_data_state t;
             punct_state = total_punct_state t;
             index_state = total_index_state t;
             state_bytes = total_state_bytes t;
             emitted = emitted_total ();
           });
    match t.watchdog with
    | None -> ()
    | Some w ->
        List.iter
          (fun (b : Executor.breakdown) ->
            match
              Obs.Watchdog.observe w ~op:b.op_name ~tick ~size:b.data
                ~unreachable:
                  (Executor.unreachable_inputs t.shards.(0).compiled b.op_name)
            with
            | None -> ()
            | Some (a : Obs.Watchdog.alarm) ->
                emit_driver
                  (Obs.Event.Alarm
                     {
                       tick = a.tick;
                       op = a.op;
                       slope = a.slope;
                       size = a.size;
                       unreachable = a.unreachable;
                     }))
          (state_breakdown t)
  in
  (* Replay-log accounting, only when checkpointing is armed (the gauges
     would otherwise break sequential/sharded metric-family parity). The
     gauges are set at every grid point, so a scrape sees the healthy
     saw-tooth: growth between cuts, back to ~zero after each one. *)
  let observe_history () =
    match t.checkpoint with
    | None -> ()
    | Some _ ->
        Obs.Registry.set_gauge ~agg:Obs.Counters.Sum t.driver_reg
          "history_len" (history_elems t);
        Obs.Registry.set_gauge ~agg:Obs.Counters.Sum t.driver_reg
          "history_bytes" (history_bytes t)
  in
  (* The watchdog must not see the raw saw-tooth (its slope detector
     would flag the healthy between-cut climb), so it watches the log's
     *excess over one checkpoint interval* — identically zero while cuts
     keep truncating, climbing monotonically the moment they stall. *)
  let watch_history ~interval ~tick =
    match t.watchdog with
    | None -> ()
    | Some w -> (
        match
          Obs.Watchdog.observe w ~op:"replay_history" ~tick
            ~size:(max 0 (history_elems t - interval))
            ~unreachable:[]
        with
        | None -> ()
        | Some (a : Obs.Watchdog.alarm) ->
            emit_driver
              (Obs.Event.Alarm
                 {
                   tick = a.tick;
                   op = a.op;
                   slope = a.slope;
                   size = a.size;
                   unreachable = a.unreachable;
                 }))
  in
  (* Contract checks on the barrier grid, mirroring Executor.run's: the
     driver (which sees the whole input) checks punctuation-progress
     stalls; each shard's contract enforces its slice of the state budget.
     Workers are parked, so reading and shedding their state is safe. *)
  let contract_checks ~tick =
    (match t.driver_contract with
    | Some ct ->
        ignore
          (Contract.check_stalls ct ~emit:emit_driver ?watchdog:t.watchdog
             ~tick ())
    | None -> ());
    Array.iter
      (fun (s : shard) ->
        match s.contract with
        | Some ct ->
            ignore
              (Contract.enforce_budget ct ~telemetry:s.tel ~tick
                 ~bytes_now:(fun () -> Executor.total_state_bytes s.compiled)
                 ())
        | None -> ())
      t.shards
  in
  (* Live observability at the quiesced grid points (workers parked, so
     reading shard state and registries is safe): per-shard per-operator
     state gauges — Sum-merged, so the fleet total is what a scrape sees —
     driver-side GC deltas into the run-spanning driver registry, and (with
     an exporter) one rendered snapshot of the merged registry published to
     the endpoint. Same registry entries as the sequential plane, so a
     [--shards n] scrape exposes the same series names. *)
  let prev_snapshot = ref None in
  let prev_gc = ref (Gc.quick_stat ()) in
  let observe_plane ~tick =
    if t.instrument then begin
      Array.iter
        (fun (s : shard) ->
          List.iter
            (fun (b : Executor.breakdown) ->
              let set suffix v =
                Telemetry.set_gauge ~agg:Obs.Counters.Sum s.tel
                  (b.Executor.op_name ^ "." ^ suffix) v
              in
              set "data_state" b.Executor.data;
              set "punct_state" b.Executor.puncts;
              set "index_state" b.Executor.index;
              set "state_bytes" b.Executor.bytes)
            (Executor.state_breakdown s.compiled))
        t.shards;
      (* Driver-domain GC only: in OCaml 5 [Gc.quick_stat] reads the
         calling domain's allocation counters, and the workers are parked —
         this tracks the orchestration side's churn, labelled identically
         to the sequential counters so dashboards need one query. *)
      let s = Gc.quick_stat () in
      let p = !prev_gc in
      prev_gc := s;
      let dw f = max 0 (int_of_float (f s -. f p)) in
      let di f = max 0 (f s - f p) in
      Obs.Registry.incr ~by:(dw (fun (g : Gc.stat) -> g.minor_words))
        t.driver_reg "gc_minor_words";
      Obs.Registry.incr ~by:(dw (fun (g : Gc.stat) -> g.promoted_words))
        t.driver_reg "gc_promoted_words";
      Obs.Registry.incr ~by:(dw (fun (g : Gc.stat) -> g.major_words))
        t.driver_reg "gc_major_words";
      Obs.Registry.incr ~by:(di (fun (g : Gc.stat) -> g.minor_collections))
        t.driver_reg "gc_minor_collections";
      Obs.Registry.incr ~by:(di (fun (g : Gc.stat) -> g.major_collections))
        t.driver_reg "gc_major_collections";
      Obs.Registry.incr ~by:(di (fun (g : Gc.stat) -> g.compactions))
        t.driver_reg "gc_compactions";
      Obs.Registry.set_gauge ~agg:Obs.Counters.Sum t.driver_reg
        "gc_heap_words" s.heap_words
    end;
    match exporter with
    | None -> ()
    | Some ex ->
        let snap =
          Obs.Snapshot.capture ?prev:!prev_snapshot ~tick (merged_registry t)
        in
        prev_snapshot := Some snap;
        Obs.Exporter.publish ex (Obs.Openmetrics.render snap)
  in
  let observe_metrics
      (record :
        Metrics.t ->
        tick:int ->
        data_state:int ->
        punct_state:int ->
        ?index_state:int ->
        ?state_bytes:int ->
        emitted:int ->
        unit ->
        unit) ~tick =
    record metrics ~tick ~data_state:(total_data_state t)
      ~punct_state:(total_punct_state t)
      ~index_state:(total_index_state t)
      ~state_bytes:(total_state_bytes t) ~emitted:(emitted_total ()) ()
  in
  let body () =
    Seq.iter
      (fun el ->
        incr consumed;
        let seq = !consumed in
        (match t.driver_contract with
        | Some ct -> Contract.note_element ct ~tick:seq el
        | None -> ());
        (match Shard_router.route_element t.router el with
        | Shard_router.Local k -> send k (seq, el)
        | Shard_router.Broadcast ->
            for k = 0 to n - 1 do
              send k (seq, el)
            done);
        if !consumed mod sample_every = 0 then begin
          quiesce ();
          observe_metrics Metrics.observe ~tick:!consumed;
          contract_checks ~tick:!consumed;
          sample_and_watch ~tick:!consumed;
          incr grid;
          (match t.checkpoint with
          | Some cfg ->
              if !grid mod cfg.Checkpoint.every = 0 then
                take_checkpoint ~tick:!consumed;
              watch_history
                ~interval:(cfg.Checkpoint.every * sample_every)
                ~tick:!consumed
          | None -> ());
          observe_history ();
          observe_plane ~tick:!consumed;
          release ()
        end)
      elements;
    for k = 0 to n - 1 do
      flush_buf k;
      send_ctl k (Stop !consumed)
    done;
    (* Reap the fleet, restarting any shard that died on (or before) its
       flush — the restart replays history, then gets Stop again. *)
    let rec reap k =
      let s = t.shards.(k) in
      match s.domain with
      | None -> ()
      | Some d ->
          Domain.join d;
          s.domain <- None;
          if s.dead <> None then begin
            handle_crash k;
            send_ctl k (Stop !consumed);
            reap k
          end
    in
    for k = 0 to n - 1 do
      reap k
    done
  in
  (try body ()
   with e ->
     (* Shard_failed / contract poison already aborted; anything else
        (e.g. a driver-contract stall under Fail) still needs the fleet
        torn down before the exception escapes. *)
     abort_all ();
     raise e);
  observe_metrics Metrics.flush ~tick:!consumed;
  contract_checks ~tick:!consumed;
  sample_and_watch ~tick:!consumed;
  observe_history ();
  observe_plane ~tick:!consumed;
  emit_driver (Obs.Event.Run_end { tick = !consumed; emitted = emitted_total () });
  (* Committed chunks (one per checkpoint, ascending within and across
     chunks — every pre-cut batch was drained at its cut) precede the
     still-live tail, which holds only post-cut sequence numbers. *)
  let live_outputs =
    Array.to_list t.shards
    |> List.concat_map (fun s ->
           List.rev_map (fun (seq, rank, el) -> (seq, s.index, rank, el))
             s.outputs)
    |> List.sort (fun (s1, h1, r1, _) (s2, h2, r2, _) ->
           compare (s1, h1, r1) (s2, h2, r2))
  in
  let outputs =
    List.concat (List.rev (live_outputs :: !committed))
    |> List.map (fun (_, _, _, el) -> el)
  in
  if t.instrument then begin
    (* Merged trace order: tick, then shard, then per-shard emission
       index; driver events sort after every worker event of their tick
       (a Sample describes the tick's *completed* state). A shard restored
       from a checkpoint contributes its pre-cut baseline first, then the
       live incarnation's regenerated suffix. *)
    let tagged =
      Array.to_list t.shards
      |> List.concat_map (fun s ->
             List.mapi
               (fun i e -> (Obs.Event.tick_of e, s.index, i, Some s.index, e))
               (s.base_events @ s.events_of ()))
    in
    let driver =
      List.rev t.driver_events
      |> List.mapi (fun i e -> (Obs.Event.tick_of e, max_int, i, None, e))
    in
    t.merged <-
      List.sort
        (fun (t1, s1, i1, _, _) (t2, s2, i2, _, _) ->
          compare (t1, s1, i1) (t2, s2, i2))
        (tagged @ driver)
      |> List.map (fun (_, _, _, tag, e) -> (tag, e))
  end;
  Array.iter (fun s -> Telemetry.close s.tel) t.shards;
  { outputs; metrics; consumed = !consumed; emitted = emitted_total () }

let report ?(meta = []) t (r : result) =
  let c0 = t.shards.(0).compiled in
  let per_shard_ops =
    Array.map (fun s -> Executor.operators ~c:s.compiled) t.shards
  in
  let sum_alists alists =
    match alists with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun acc alist -> List.map2 (fun (k, v) (_, v') -> (k, v + v')) acc alist)
          first rest
  in
  let operators =
    List.mapi
      (fun i (op0 : Operator.t) ->
        let nth_op ops : Operator.t = List.nth ops i in
        let stats =
          Array.to_list per_shard_ops
          |> List.map (fun ops ->
                 Operator.stats_to_alist ((nth_op ops).Operator.stats ()))
          |> sum_alists
        in
        let sum_state f =
          Array.fold_left (fun acc ops -> acc + f (nth_op ops)) 0 per_shard_ops
        in
        {
          Obs.Report.name = op0.Operator.name;
          inputs = op0.Operator.input_names;
          unreachable_inputs =
            Executor.unreachable_inputs c0 op0.Operator.name;
          stats;
          state =
            [
              ("data", sum_state (fun op -> op.Operator.data_state_size ()));
              ("puncts", sum_state (fun op -> op.Operator.punct_state_size ()));
              ("index", sum_state (fun op -> op.Operator.index_state_size ()));
              ("bytes", sum_state (fun op -> op.Operator.state_bytes ()));
            ];
        })
      (Executor.operators ~c:c0)
  in
  let contract_meta =
    match t.contract_config with
    | None -> []
    | Some _ ->
        let sum f =
          Array.fold_left
            (fun acc s ->
              acc + match s.contract with Some c -> f c | None -> 0)
            0 t.shards
        in
        let stalls =
          match t.driver_contract with
          | Some c -> Contract.stall_count c
          | None -> 0
        in
        [
          ( "contract",
            Obs.Json.Obj
              [
                ("late_tuples", Obs.Json.Int (sum Contract.late_count));
                ("dup_puncts", Obs.Json.Int (sum Contract.dup_count));
                ("punct_stalls", Obs.Json.Int stalls);
                ("quarantined", Obs.Json.Int (sum Contract.quarantined_count));
                ( "quarantine_overflow",
                  Obs.Json.Int (sum Contract.quarantine_overflow) );
                ("shed_tuples", Obs.Json.Int (sum Contract.shed_count));
              ] );
        ]
  in
  {
    Obs.Report.meta =
      (("shards", Obs.Json.Int (n_shards t)) :: meta)
      @ [
          ("consumed", Obs.Json.Int r.consumed);
          ("emitted", Obs.Json.Int r.emitted);
          ("shard_crashes", Obs.Json.Int (crash_count t));
        ]
      @ contract_meta;
    operators;
    registry = merged_registry t;
    series = Executor.series_json r.metrics;
    alarms = alarms t;
  }
