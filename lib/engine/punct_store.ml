open Relational
module Punctuation = Streams.Punctuation

module Key = struct
  type t = Value.t list

  let equal a b = List.compare Value.compare a b = 0
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

type entry = {
  punct : Punctuation.t;
  inserted_at : int;
  mutable forwarded : bool;
}

(* Constant-only punctuations are grouped by their pinned positions (at most
   one group per declared scheme) and hash-indexed by the pinned values.
   Punctuations carrying order patterns (watermarks) live in a separate
   list: subsumption collapses an advancing watermark to a single entry per
   shape, so linear scans stay cheap. *)
type group = { positions : int list; entries : entry KeyTbl.t }

type t = {
  schema : Schema.t;
  mutable groups : group list;
  mutable ordered : entry list;
  mutable pending_forward : entry list;  (** reversed insertion order *)
  mutable insertions : int;
  mutable rejected : int;  (** arrivals already subsumed by the store *)
  mutable subsumed : int;  (** stored entries displaced by a later insert *)
  mutable removed : int;  (** entries removed via expire/purge_if *)
}

let create schema =
  {
    schema;
    groups = [];
    ordered = [];
    pending_forward = [];
    insertions = 0;
    rejected = 0;
    subsumed = 0;
    removed = 0;
  }

let schema t = t.schema

let positions_of p = List.map fst (Punctuation.const_bindings p)
let values_of p = List.map snd (Punctuation.const_bindings p)

let covers t bindings =
  List.exists
    (fun g ->
      match
        List.map
          (fun pos ->
            match List.assoc_opt pos bindings with
            | Some v -> v
            | None -> raise Not_found)
          g.positions
      with
      | key -> KeyTbl.mem g.entries key
      | exception Not_found -> false)
    t.groups
  || List.exists (fun e -> Punctuation.covers e.punct bindings) t.ordered

let group_for t positions =
  match List.find_opt (fun g -> g.positions = positions) t.groups with
  | Some g -> g
  | None ->
      let g = { positions; entries = KeyTbl.create 32 } in
      t.groups <- g :: t.groups;
      g

(* An emptied group would otherwise pin its key table (and its positions
   entry in [groups]) forever — the same shape of leak the join-state
   indexes had. *)
let drop_empty_groups t =
  t.groups <- List.filter (fun g -> KeyTbl.length g.entries > 0) t.groups

let remove_subsumed_by t p =
  let p_positions = positions_of p in
  List.iter
    (fun g ->
      if
        List.for_all (fun pos -> List.mem pos g.positions) p_positions
        && g.positions <> p_positions
      then begin
        let victims =
          KeyTbl.fold
            (fun key e acc ->
              if Punctuation.subsumes p e.punct then key :: acc else acc)
            g.entries []
        in
        List.iter (KeyTbl.remove g.entries) victims;
        t.subsumed <- t.subsumed + List.length victims
      end)
    t.groups;
  drop_empty_groups t;
  let keep, gone =
    List.partition (fun e -> not (Punctuation.subsumes p e.punct)) t.ordered
  in
  t.subsumed <- t.subsumed + List.length gone;
  t.ordered <- keep

let subsumed_by_stored t p =
  List.exists (fun e -> Punctuation.subsumes e.punct p) t.ordered
  || (not (Punctuation.is_ordered p))
     && covers t (Punctuation.const_bindings p)

let already_subsumed = subsumed_by_stored

let insert t ~now p =
  if not (Schema.equal (Punctuation.schema p) t.schema) then
    invalid_arg "Punct_store.insert: schema mismatch";
  if already_subsumed t p then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    remove_subsumed_by t p;
    let entry = { punct = p; inserted_at = now; forwarded = false } in
    if Punctuation.is_ordered p then t.ordered <- entry :: t.ordered
    else begin
      let g = group_for t (positions_of p) in
      KeyTbl.replace g.entries (values_of p) entry
    end;
    t.pending_forward <- entry :: t.pending_forward;
    t.insertions <- t.insertions + 1;
    true
  end

let size t =
  List.fold_left (fun acc g -> acc + KeyTbl.length g.entries) 0 t.groups
  + List.length t.ordered

let group_count t = List.length t.groups
let pending_count t = List.length t.pending_forward

let insertions t = t.insertions
let rejected_count t = t.rejected
let subsumed_count t = t.subsumed
let removed_count t = t.removed

let forbids t tuple =
  List.exists
    (fun g ->
      let key = Tuple.project tuple g.positions in
      KeyTbl.mem g.entries key)
    t.groups
  || List.exists (fun e -> Punctuation.matches e.punct tuple) t.ordered

let iter f t =
  List.iter (fun g -> KeyTbl.iter (fun _ e -> f e.punct) g.entries) t.groups;
  List.iter (fun e -> f e.punct) t.ordered

let to_list t =
  let acc = ref [] in
  iter (fun p -> acc := p :: !acc) t;
  !acc

(* The integer tick a single punctuation vouches for: a constant pins that
   exact tick as covered; a watermark [Less_than v] covers everything up to
   [v - 1]. Non-integer constraints carry no position on the tick axis. *)
let punct_tick p =
  List.fold_left
    (fun acc (_, pat) ->
      let v =
        match pat with
        | Punctuation.Const (Value.Int v) -> Some v
        | Punctuation.Less_than (Value.Int v) -> Some (v - 1)
        | _ -> None
      in
      match (acc, v) with
      | None, v -> v
      | Some a, Some b -> Some (max a b)
      | Some _, None -> acc)
    None (Punctuation.constraints p)

let progress t =
  let acc = ref None in
  iter
    (fun p ->
      match punct_tick p with
      | None -> ()
      | Some v ->
          acc :=
            Some
              (match !acc with
              | None -> (v, v)
              | Some (lo, hi) -> (min lo v, max hi v)))
    t;
  !acc

let remove_where t pred =
  let count =
    List.fold_left
      (fun count g ->
        let victims =
          KeyTbl.fold
            (fun key e acc -> if pred e then key :: acc else acc)
            g.entries []
        in
        List.iter (KeyTbl.remove g.entries) victims;
        count + List.length victims)
      0 t.groups
  in
  drop_empty_groups t;
  let keep, drop = List.partition (fun e -> not (pred e)) t.ordered in
  t.ordered <- keep;
  (* a removed punctuation must not be forwarded later: expire/purge_if and
     the forward queue stay symmetric *)
  t.pending_forward <- List.filter (fun e -> not (pred e)) t.pending_forward;
  let total = count + List.length drop in
  t.removed <- t.removed + total;
  total

let expire t ~now lifespan =
  remove_where t (fun e ->
      Core.Punct_purge.expired ~now ~inserted_at:e.inserted_at lifespan)

let purge_if t pred = remove_where t (fun e -> pred e.punct)

let find_entry t p =
  if Punctuation.is_ordered p then
    List.find_opt (fun e -> Punctuation.equal e.punct p) t.ordered
  else
    let positions = positions_of p in
    match List.find_opt (fun g -> g.positions = positions) t.groups with
    | None -> None
    | Some g -> KeyTbl.find_opt g.entries (values_of p)

let mark_forwarded t p =
  match find_entry t p with Some e -> e.forwarded <- true | None -> ()

let is_forwarded t p =
  match find_entry t p with Some e -> e.forwarded | None -> false

(* --- serialization ------------------------------------------------------ *)

module Wire = Streams.Wire

let snapshot_version = 1

let write_entry b (e : entry) =
  Wire.write_punctuation b e.punct;
  Wire.W.int b e.inserted_at;
  Wire.W.bool b e.forwarded

let read_entry ~schema r =
  let punct = Wire.read_punctuation ~schema r in
  let inserted_at = Wire.R.int r in
  let forwarded = Wire.R.bool r in
  { punct; inserted_at; forwarded }

(* Ordered entries keep their list order (it is insertion history); group
   entries are emitted sorted by punctuation so the same store state always
   serializes to the same bytes. The forward queue is serialized as bare
   punctuations and re-resolved through {!find_entry} on restore, so queued
   entries stay physically shared with their stored twins (subsumption
   keeps punctuations unique per store). *)
let write_snapshot b (t : t) =
  Wire.W.u8 b snapshot_version;
  Wire.W.int b t.insertions;
  Wire.W.int b t.rejected;
  Wire.W.int b t.subsumed;
  Wire.W.int b t.removed;
  Wire.W.list write_entry b t.ordered;
  Wire.W.list
    (fun b g ->
      Wire.W.list Wire.W.int b g.positions;
      let entries = KeyTbl.fold (fun _ e acc -> e :: acc) g.entries [] in
      let entries =
        List.sort (fun a b -> Punctuation.compare a.punct b.punct) entries
      in
      Wire.W.list write_entry b entries)
    b t.groups;
  Wire.W.list
    (fun b (e : entry) -> Wire.write_punctuation b e.punct)
    b t.pending_forward

let read_snapshot (t : t) r =
  let v = Wire.R.u8 r in
  if v <> snapshot_version then
    raise
      (Wire.Corrupt
         (Printf.sprintf "Punct_store snapshot version %d, expected %d" v
            snapshot_version));
  let insertions = Wire.R.int r in
  let rejected = Wire.R.int r in
  let subsumed = Wire.R.int r in
  let removed = Wire.R.int r in
  let ordered = Wire.R.list (read_entry ~schema:t.schema) r in
  let groups =
    Wire.R.list
      (fun r ->
        let positions = Wire.R.list Wire.R.int r in
        let entries = Wire.R.list (read_entry ~schema:t.schema) r in
        let tbl = KeyTbl.create (max 32 (2 * List.length entries)) in
        List.iter (fun e -> KeyTbl.replace tbl (values_of e.punct) e) entries;
        { positions; entries = tbl })
      r
  in
  let pending = Wire.R.list (Wire.read_punctuation ~schema:t.schema) r in
  t.insertions <- insertions;
  t.rejected <- rejected;
  t.subsumed <- subsumed;
  t.removed <- removed;
  t.ordered <- ordered;
  t.groups <- groups;
  t.pending_forward <-
    List.map
      (fun p ->
        match find_entry t p with
        | Some e -> e
        | None ->
            raise
              (Wire.Corrupt
                 "Punct_store snapshot: pending punctuation not in store"))
      pending

let collect_forwardable t ~drained =
  let collected = ref [] in
  let still_pending =
    List.filter
      (fun e ->
        if e.forwarded then false
        else if drained e.punct then begin
          e.forwarded <- true;
          collected := e.punct :: !collected;
          false
        end
        else true)
      t.pending_forward
  in
  t.pending_forward <- still_pending;
  (* pending_forward is reversed insertion order, so [collected] (reversed
     again by the cons above) comes out in insertion order *)
  !collected
