(** The punctuation store of one join input: received punctuations, indexed
    for coverage queries, with the §5.1 eviction mechanisms (partner-based
    purging and lifespans) available to the operator. *)

type t

val create : Relational.Schema.t -> t
val schema : t -> Relational.Schema.t

(** [insert t ~now p] stores [p] (stamped with logical time [now]);
    punctuations subsumed by an already-stored one are dropped, and stored
    ones subsumed by [p] are replaced. Returns [true] when [p] was new
    information. *)
val insert : t -> now:int -> Streams.Punctuation.t -> bool

val size : t -> int
val insertions : t -> int

(** Conservation accounting, cumulative over the store's lifetime:
    every arrival is either rejected (uninformative) or inserted, and every
    insertion is now resident, displaced by a subsuming later insert, or
    removed by {!expire}/{!purge_if} —
    [insertions t = size t + subsumed_count t + removed_count t]. The
    stats-conservation property test pins both identities. *)
val rejected_count : t -> int

val subsumed_count : t -> int
val removed_count : t -> int

(** [group_count t] — constant-punctuation index groups currently held.
    Groups that empty out (all entries expired/purged/subsumed) are dropped
    eagerly, so this stays proportional to the live punctuation shapes. *)
val group_count : t -> int

(** [pending_count t] — punctuations queued for forwarding. {!expire} and
    {!purge_if} remove their victims from this queue too: a punctuation the
    store no longer holds is never forwarded. *)
val pending_count : t -> int

(** [covers t bindings] — does some stored punctuation guarantee that no
    future tuple agrees with [bindings] (position/value pairs)? This is the
    oracle the chained purge test consumes. *)
val covers : t -> (int * Relational.Value.t) list -> bool

(** [subsumed_by_stored t p] — does some stored punctuation make [p]
    redundant (its guarantee implies [p]'s)? E.g. a stored watermark at 20
    subsumes an incoming one at 10, or the constant 7 below it. *)
val subsumed_by_stored : t -> Streams.Punctuation.t -> bool

(** [forbids t tuple] — would [tuple] violate a stored punctuation? (input
    well-formedness monitoring). *)
val forbids : t -> Relational.Tuple.t -> bool

val iter : (Streams.Punctuation.t -> unit) -> t -> unit
val to_list : t -> Streams.Punctuation.t list

(** [progress t] — the [(min, max)] covered tick over the stored
    punctuations, where a constant [Int v] pattern covers tick [v] and a
    watermark [Less_than (Int v)] covers up to [v - 1] (a punctuation with
    several integer constraints counts its furthest one). [None] when no
    stored punctuation constrains an integer attribute. Feeds the
    per-input [punct_progress_min]/[punct_progress_max] gauges. *)
val progress : t -> (int * int) option

(** [expire t ~now lifespan] drops punctuations older than the lifespan;
    returns how many were dropped. *)
val expire : t -> now:int -> Core.Punct_purge.lifespan -> int

(** [purge_if t pred] drops stored punctuations satisfying [pred]; returns
    the count (used with {!Core.Punct_purge.punct_purgeable_by_partners}). *)
val purge_if : t -> (Streams.Punctuation.t -> bool) -> int

(** Mark/read the punctuation-propagation bookkeeping: has [p] already been
    forwarded downstream by the owning operator? *)
val mark_forwarded : t -> Streams.Punctuation.t -> unit

val is_forwarded : t -> Streams.Punctuation.t -> bool

(** [collect_forwardable t ~drained] — the propagation work-list: every
    stored punctuation not yet forwarded for which [drained p] now holds is
    returned (in insertion order) and marked forwarded; the rest stay
    pending. Amortized cost is proportional to the pending set, not the
    whole store — operators call this once per purge round. *)
val collect_forwardable :
  t -> drained:(Streams.Punctuation.t -> bool) -> Streams.Punctuation.t list

(** Versioned binary serialization ({!Streams.Wire}) for checkpointing:
    stored punctuations (with insertion time and forwarding marks), the
    pending forward queue (restored entry-shared with the store), and the
    conservation counters. [read_snapshot] restores in place.
    @raise Streams.Wire.Corrupt on a truncated, malformed or
    version-mismatched snapshot. *)
val write_snapshot : Streams.Wire.W.t -> t -> unit

val read_snapshot : t -> Streams.Wire.R.t -> unit
