open Relational
module Element = Streams.Element

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type condition = { attr : string; op : comparison; value : Value.t }

let eval condition tuple =
  let x = Tuple.get_named tuple condition.attr in
  match condition.op, x with
  | _, Value.Null -> false
  | Eq, _ -> Value.equal x condition.value
  | Ne, _ -> not (Value.equal x condition.value)
  | Lt, _ -> Value.compare x condition.value < 0
  | Le, _ -> Value.compare x condition.value <= 0
  | Gt, _ -> Value.compare x condition.value > 0
  | Ge, _ -> Value.compare x condition.value >= 0

let create ?(name = "select") ~input ~conditions () =
  List.iter
    (fun c ->
      if not (Schema.mem input c.attr) then
        invalid_arg
          (Printf.sprintf "Select.create: unknown attribute %s" c.attr))
    conditions;
  let stats = ref Operator.empty_stats in
  let push = function
    | Element.Data tup ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        if List.for_all (fun c -> eval c tup) conditions then begin
          stats := { !stats with tuples_out = !stats.tuples_out + 1 };
          [ Element.Data tup ]
        end
        else []
    | Element.Punct p ->
        stats :=
          {
            !stats with
            puncts_in = !stats.puncts_in + 1;
            puncts_out = !stats.puncts_out + 1;
          };
        [ Element.Punct p ]
  in
  {
    Operator.name;
    out_schema = input;
    input_names = [ Schema.stream_name input ];
    push;
    push_batch = Operator.batch_of_push push;
    flush = (fun () -> []);
    data_state_size = (fun () -> 0);
    punct_state_size = (fun () -> 0);
    index_state_size = (fun () -> 0);
    state_bytes = (fun () -> 0);
    stats = (fun () -> !stats);
    persistence = Operator.Stateless;
  }
