(** Sharded query execution across OCaml 5 domains.

    [create ~shards] compiles [shards] independent copies of the plan —
    each with its own join states, punctuation stores and (optionally) its
    own telemetry handle — and [run] drives them from one input sequence:
    the driver routes every element through a {!Shard_router} (data to its
    hash owner, punctuations to their owner or broadcast), ships it over a
    bounded {!Spsc} queue as part of a batch, and merges the shards'
    outputs, metrics samples and telemetry events back into one
    deterministic result.

    {2 Correctness spine}

    Chained purge (§3.2.1 of the paper) is per join key: a tuple's
    matchability and purgeability depend only on elements sharing its key
    values, and the router sends all of those to one shard. So each shard
    is a complete, Theorem-1-bounded engine for its key slice, and:

    - the {e output data-tuple multiset} equals the sequential run's
      (compare with {!Executor.output_hash});
    - the {e final per-operator data/index state} equals the sequential
      run's, summed across shards — boundedness is preserved shard-wise;
    - under the eager purge policy the barrier-sampled {e state series}
      equals the sequential series tick for tick ({!Metrics.equal});
      lazy/adaptive policies defer purges on per-shard counters, so
      mid-run sizes may differ while the final flushed state still
      agrees.

    {2 Determinism}

    Every element carries its global sequence number: workers stamp it on
    the telemetry clock, outputs are merged by (sequence, shard, emission
    index), and events by (tick, shard, emission index) — so two runs of
    the same input at the same shard count are byte-identical, and the
    driver's barrier protocol samples all shards at the {e same} global
    tick, making watchdog behaviour reproduce the sequential run's.

    The driver feeds a single optional watchdog with each operator's
    state summed across shards under the sequential operator names, so an
    unsafe query trips the same alarms at the same ticks as a sequential
    run on the sampling grid.

    {2 Supervision}

    Worker domains are supervised: an exception escaping a worker (a bug,
    or an injected {!Streams.Fault_injector.Injected_kill}) poisons its
    {!Spsc} queue and publishes a post-mortem instead of hanging the
    barrier. The driver then joins the dead domain and — because a shard's
    state is a pure function of its input batch sequence — restarts it
    from a fresh compile and replays its recorded history, reproducing
    the dead incarnation's state, outputs and telemetry exactly (which is
    why the dead incarnation's are discarded wholesale, not merged).
    Restarts are bounded per shard ([max_restarts], exponential backoff);
    exhausting them raises {!Shard_failed}. A
    {!Contract.Violation_failure} escaping a worker is poison, not a
    crash: replay would deterministically re-raise it, so it aborts the
    fleet and propagates. *)

type t

exception Shard_failed of { shard : int; attempts : int; reason : string }
(** A shard kept crashing past its restart budget; the fleet has been
    torn down. The CLI maps this to exit code 5. *)

val create :
  ?config:Executor.Config.t ->
  ?watchdog:Obs.Watchdog.t ->
  ?instrument:bool ->
  ?contract_config:Contract.config ->
  ?kills:Streams.Fault_injector.kill list ->
  ?max_restarts:int ->
  ?checkpoint:Checkpoint.config ->
  ?resume:Checkpoint.t ->
  shards:int ->
  Query.Cjq.t ->
  Query.Plan.t ->
  t
(** [config] (default {!Executor.Config.default}) is the per-shard compile
    configuration; its [telemetry] and [contract] fields are ignored — each
    shard incarnation owns fresh handles, governed by [instrument] and
    [contract_config] below.

    [instrument] (default [false]) gives every shard an enabled telemetry
    handle over an in-memory sink, making {!events} and the aggregated
    {!report}'s registry meaningful; leave it off for benchmarking — the
    shards then run with {!Telemetry.null}, exactly as an uninstrumented
    sequential engine does.

    [contract_config] arms punctuation-contract monitoring: each shard's
    operators get their own {!Contract.t} (state budgets are split evenly,
    budget/shards each), while punctuation-{e stall} tracking runs on a
    driver-side contract, since only the driver sees the whole input.
    Budget enforcement and stall checks run at the sampling barriers,
    mirroring {!Executor.run}'s grid.

    [kills] arms deterministic worker kills (shard [s] raises on reaching
    global sequence [at_seq]) for fault-injection tests and kill-storm
    soaks; each kill fires once, several may target the same shard, and
    the restarted incarnation replays the same sequence unharmed. Build
    storms with {!Streams.Fault_injector.kill_schedule}.

    [max_restarts] (default 2) bounds restarts {e per shard} — note a
    storm of [k] kills against one shard needs [max_restarts >= k].

    [checkpoint] arms punctuation-aligned checkpointing: every
    [checkpoint.every]-th sampling-grid barrier the quiesced shards are
    snapshotted ({!Operator.persistence}), outputs so far are committed
    to the cut, and each shard's replay history is truncated — bounding
    crash recovery to one checkpoint interval of input. With
    [checkpoint.dir] set each cut is also persisted durably
    ({!Checkpoint.save}).

    [resume] starts the fleet from a previously saved cut
    ({!Checkpoint.load_latest}): operator state is restored in place and
    [run] must then be given the {e same} input sequence — it skips the
    already-consumed prefix itself.

    @raise Invalid_argument when [resume] was taken at a different shard
    count, or when an operator in the plan does not support snapshots
    ([Volatile]) while [checkpoint] is armed (raised at the first cut). *)

val crash_count : t -> int
(** Total worker restarts performed so far (summed over shards). *)

type restart = {
  shard : int;
  attempt : int;
  replayed : int;
      (** input {e elements} replayed into the fresh incarnation — with
          checkpointing armed, bounded by the checkpoint interval *)
  restored : bool;
      (** the incarnation's state came from a checkpoint restore rather
          than a from-scratch replay *)
}

val restarts_log : t -> restart list
(** Every supervised restart of the last [run], oldest first — the soak
    harness asserts bounded [replayed] from this without instrumenting. *)

val history_elems : t -> int
(** Input elements currently retained for crash replay, summed across
    shards; with checkpointing armed this drops back near zero at every
    cut. *)

val history_bytes : t -> int
(** Estimated bytes of the retained replay history, summed across
    shards (the [pstream_history_bytes] gauge). *)

val router : t -> Shard_router.t
val n_shards : t -> int

type result = {
  outputs : Streams.Element.t list;
      (** merged root outputs in deterministic (sequence, shard) order *)
  metrics : Metrics.t;  (** driver-sampled global state series *)
  consumed : int;
  emitted : int;  (** data tuples across all shards *)
}

(** [run ?sample_every ?label t elements] — one shot per [t]: drives the
    worker domains to completion and joins them. Ticks count every input
    element (as {!Executor.run} does), and sampling happens at global
    barriers on the [sample_every] grid: the driver quiesces all shards,
    reads their state, feeds metrics, the watchdog and the contract
    checks, then releases them.

    Under [instrument] the quiesced grid points also maintain the live
    observability plane: per-shard per-operator state gauges (Sum-merged
    across shards) and driver-side GC-delta counters. [exporter], when
    given, receives one rendered {!Obs.Openmetrics} snapshot of the merged
    registry per grid point — the same series names a sequential run
    exports.

    [on_commit], with checkpointing armed, streams each cut's committed
    outputs to the caller instead of retaining them (the soak harness
    folds them into a {!Checkpoint.Rolling} digest to keep driver memory
    flat); the [result]'s [outputs] then contain only the post-last-cut
    tail. Incompatible with a durable [checkpoint.dir] (a persisted cut
    must own its committed outputs) — that combination raises
    [Invalid_argument].

    @raise Shard_failed when a shard exhausts its restart budget.
    @raise Contract.Violation_failure under a [Fail] contract. Either way
    the fleet is torn down before the exception escapes. *)
val run :
  ?sample_every:int ->
  ?label:string ->
  ?exporter:Obs.Exporter.t ->
  ?on_commit:(Streams.Element.t list -> unit) ->
  t ->
  Streams.Element.t Seq.t ->
  result

(** Merged, deterministically ordered telemetry events of the last [run]:
    [(Some shard, event)] for worker events, [(None, event)] for the
    driver's [Run_start]/[Sample]/[Alarm]/[Run_end]. Empty unless
    [instrument] was set. Serialize with [Event.to_line ?shard] to get the
    one-trace-with-a-shard-field JSONL the CLI's [--trace] writes. *)
val events : t -> (int option * Obs.Event.t) list

(** Watchdog alarms raised by the driver (empty without a watchdog). *)
val alarms : t -> Obs.Watchdog.alarm list

(** Summed state accessors — meaningful when the shards are quiescent
    (after [run], or inside a barrier). *)
val total_data_state : t -> int

val total_punct_state : t -> int
val total_index_state : t -> int
val total_state_bytes : t -> int

(** [state_breakdown t] — per-operator state summed across shards, in the
    sequential operator order. *)
val state_breakdown : t -> Executor.breakdown list

(** [shard_breakdowns t] — one breakdown list per shard, for the
    [--shards] CLI's per-shard table. *)
val shard_breakdowns : t -> Executor.breakdown list array

(** [report ?meta t result] — aggregated run report: operator stats and
    state summed across shards, registries merged ({!Obs.Registry.merged}),
    the driver's series and alarms, plus ["shards"] and ["shard_crashes"]
    meta entries (and a ["contract"] summary when a contract is armed).
    Replaying the merged {!events} trace reproduces its counters, exactly
    as for a sequential report. *)
val report :
  ?meta:(string * Obs.Json.t) list -> t -> result -> Obs.Report.t
