(** Sharded query execution across OCaml 5 domains.

    [create ~shards] compiles [shards] independent copies of the plan —
    each with its own join states, punctuation stores and (optionally) its
    own telemetry handle — and [run] drives them from one input sequence:
    the driver routes every element through a {!Shard_router} (data to its
    hash owner, punctuations to their owner or broadcast), ships it over a
    bounded {!Spsc} queue as part of a batch, and merges the shards'
    outputs, metrics samples and telemetry events back into one
    deterministic result.

    {2 Correctness spine}

    Chained purge (§3.2.1 of the paper) is per join key: a tuple's
    matchability and purgeability depend only on elements sharing its key
    values, and the router sends all of those to one shard. So each shard
    is a complete, Theorem-1-bounded engine for its key slice, and:

    - the {e output data-tuple multiset} equals the sequential run's
      (compare with {!Executor.output_hash});
    - the {e final per-operator data/index state} equals the sequential
      run's, summed across shards — boundedness is preserved shard-wise;
    - under the eager purge policy the barrier-sampled {e state series}
      equals the sequential series tick for tick ({!Metrics.equal});
      lazy/adaptive policies defer purges on per-shard counters, so
      mid-run sizes may differ while the final flushed state still
      agrees.

    {2 Determinism}

    Every element carries its global sequence number: workers stamp it on
    the telemetry clock, outputs are merged by (sequence, shard, emission
    index), and events by (tick, shard, emission index) — so two runs of
    the same input at the same shard count are byte-identical, and the
    driver's barrier protocol samples all shards at the {e same} global
    tick, making watchdog behaviour reproduce the sequential run's.

    The driver feeds a single optional watchdog with each operator's
    state summed across shards under the sequential operator names, so an
    unsafe query trips the same alarms at the same ticks as a sequential
    run on the sampling grid. *)

type t

val create :
  ?policy:Purge_policy.t ->
  ?binary_impl:Executor.binary_impl ->
  ?punct_lifespan:Core.Punct_purge.lifespan ->
  ?punct_partner_purge:bool ->
  ?watchdog:Obs.Watchdog.t ->
  ?instrument:bool ->
  shards:int ->
  Query.Cjq.t ->
  Query.Plan.t ->
  t
(** [instrument] (default [false]) gives every shard an enabled telemetry
    handle over an in-memory sink, making {!events} and the aggregated
    {!report}'s registry meaningful; leave it off for benchmarking — the
    shards then run with {!Telemetry.null}, exactly as an uninstrumented
    sequential engine does. *)

val router : t -> Shard_router.t
val n_shards : t -> int

type result = {
  outputs : Streams.Element.t list;
      (** merged root outputs in deterministic (sequence, shard) order *)
  metrics : Metrics.t;  (** driver-sampled global state series *)
  consumed : int;
  emitted : int;  (** data tuples across all shards *)
}

(** [run ?sample_every ?label t elements] — one shot per [t]: drives the
    worker domains to completion and joins them. Ticks count every input
    element (as {!Executor.run} does), and sampling happens at global
    barriers on the [sample_every] grid: the driver quiesces all shards,
    reads their state, feeds metrics and the watchdog, then releases
    them. *)
val run :
  ?sample_every:int ->
  ?label:string ->
  t ->
  Streams.Element.t Seq.t ->
  result

(** Merged, deterministically ordered telemetry events of the last [run]:
    [(Some shard, event)] for worker events, [(None, event)] for the
    driver's [Run_start]/[Sample]/[Alarm]/[Run_end]. Empty unless
    [instrument] was set. Serialize with [Event.to_line ?shard] to get the
    one-trace-with-a-shard-field JSONL the CLI's [--trace] writes. *)
val events : t -> (int option * Obs.Event.t) list

(** Watchdog alarms raised by the driver (empty without a watchdog). *)
val alarms : t -> Obs.Watchdog.alarm list

(** Summed state accessors — meaningful when the shards are quiescent
    (after [run], or inside a barrier). *)
val total_data_state : t -> int

val total_punct_state : t -> int
val total_index_state : t -> int
val total_state_bytes : t -> int

(** [state_breakdown t] — per-operator state summed across shards, in the
    sequential operator order. *)
val state_breakdown : t -> Executor.breakdown list

(** [shard_breakdowns t] — one breakdown list per shard, for the
    [--shards] CLI's per-shard table. *)
val shard_breakdowns : t -> Executor.breakdown list array

(** [report ?meta t result] — aggregated run report: operator stats and
    state summed across shards, registries merged ({!Obs.Registry.merged}),
    the driver's series and alarms, plus a ["shards"] meta entry. Replaying
    the merged {!events} trace reproduces its counters, exactly as for a
    sequential report. *)
val report :
  ?meta:(string * Obs.Json.t) list -> t -> result -> Obs.Report.t
