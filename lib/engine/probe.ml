open Relational

type step = {
  step_input : string;
  key_atoms : Predicate.atom list;
  check_atoms : Predicate.atom list;
}

let orders names predicates =
  let linked a b =
    List.exists
      (fun atom -> Predicate.involves atom a && Predicate.involves atom b)
      predicates
  in
  List.map
    (fun start ->
      let rec build bound remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            let next =
              match
                List.find_opt
                  (fun r -> List.exists (fun b -> linked b r) bound)
                  remaining
              with
              | Some r -> r
              | None ->
                  (* Disconnected operator-level join graph: cartesian step
                     (kept total; the executor avoids building these). *)
                  List.hd remaining
            in
            let atoms =
              List.filter
                (fun atom ->
                  Predicate.involves atom next
                  && List.exists (fun b -> Predicate.involves atom b) bound)
                predicates
            in
            let key_atoms, check_atoms =
              match atoms with [] -> ([], []) | k :: rest -> ([ k ], rest)
            in
            build (next :: bound)
              (List.filter (fun r -> r <> next) remaining)
              ({ step_input = next; key_atoms; check_atoms } :: acc)
      in
      (start, build [ start ] (List.filter (fun n -> n <> start) names) []))
    names

(* --- compiled probe programs ------------------------------------------- *)

(* The assignment-extension loop above resolves input names, attribute
   names and index shapes per candidate, per push. A compiled program does
   all of that once at plan time: inputs become integer slot ids, attribute
   names become positions, and the hash index of every keyed step is
   resolved to a {!Join_state.handle}. The runtime loop then only touches
   arrays. *)

type ckey = {
  bound_slot : int;  (** already-bound slot carrying the probe value *)
  bound_idx : int;  (** attribute position in the bound slot's schema *)
  handle : Join_state.handle;  (** resolved index on the target's key attr *)
}

type ccheck = {
  other_slot : int;
  other_idx : int;
  cand_idx : int;  (** candidate-side attribute position *)
}

type cstep = {
  target : int;
  target_state : Join_state.t;
  key : ckey option;  (** [None] — cartesian scan step *)
  checks : ccheck array;
}

type prog = { steps : cstep array; n_slots : int }

let compile ~names ~schemas ~states ~steps =
  let n = Array.length names in
  let slot_of name =
    let rec go i =
      if i = n then raise Not_found
      else if String.equal names.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let csteps =
    List.map
      (fun step ->
        let target = slot_of step.step_input in
        let target_schema = schemas.(target) in
        let cand_idx_of atom =
          Schema.attr_index target_schema
            (Predicate.attr_on atom step.step_input)
        in
        let key =
          match step.key_atoms with
          | [] -> None
          | atom :: _ ->
              let bound_stream, bound_attr =
                Predicate.other_side atom step.step_input
              in
              let bound_slot = slot_of bound_stream in
              Some
                {
                  bound_slot;
                  bound_idx = Schema.attr_index schemas.(bound_slot) bound_attr;
                  handle =
                    Join_state.index_on states.(target) ~attr:(cand_idx_of atom);
                }
        in
        let extra =
          step.check_atoms
          @ match step.key_atoms with _ :: rest -> rest | [] -> []
        in
        let checks =
          List.map
            (fun atom ->
              let other_stream, other_attr =
                Predicate.other_side atom step.step_input
              in
              let other_slot = slot_of other_stream in
              {
                other_slot;
                other_idx = Schema.attr_index schemas.(other_slot) other_attr;
                cand_idx = cand_idx_of atom;
              })
            extra
          |> Array.of_list
        in
        { target; target_state = states.(target); key; checks })
      steps
  in
  { steps = Array.of_list csteps; n_slots = n }

let run_compiled prog tuple ~emit =
  (* Depth-first over the compiled steps; [asg] is reused in place, so
     [emit] must consume the array immediately (result assembly copies the
     values out anyway). Slots not yet bound alias the origin tuple, which
     is safe: a step only ever reads slots the walk has already bound. The
     emission order is identical to the level-by-level extension of [run] —
     candidates are visited in the same per-bucket order, and depth-first
     completion enumerates the same lexicographic sequence its concat_map
     produces. *)
  let asg = Array.make prog.n_slots tuple in
  let m = Array.length prog.steps in
  let rec go i =
    if i = m then emit asg
    else begin
      let st = prog.steps.(i) in
      let candidates =
        match st.key with
        | Some k ->
            Join_state.probe_handle st.target_state k.handle
              (Tuple.get asg.(k.bound_slot) k.bound_idx)
        | None -> Join_state.fold (fun acc x -> x :: acc) [] st.target_state
      in
      List.iter
        (fun cand ->
          let checks = st.checks in
          let nc = Array.length checks in
          let ok = ref true in
          let j = ref 0 in
          while !ok && !j < nc do
            let c = checks.(!j) in
            if
              not
                (Value.equal (Tuple.get cand c.cand_idx)
                   (Tuple.get asg.(c.other_slot) c.other_idx))
            then ok := false;
            incr j
          done;
          if !ok then begin
            asg.(st.target) <- cand;
            go (i + 1)
          end)
        candidates
    end
  in
  go 0

let run_compiled_entries prog tuple ~tick ~emit =
  (* Instrumented twin of [run_compiled]: [ticks] runs parallel to [asg]
     and carries each bound tuple's arrival tick (the origin's is [tick]),
     so [emit] can compute the result's latency span. Same emission order;
     both arrays are reused in place. *)
  let asg = Array.make prog.n_slots tuple in
  let ticks = Array.make prog.n_slots tick in
  let m = Array.length prog.steps in
  let rec go i =
    if i = m then emit asg ticks
    else begin
      let st = prog.steps.(i) in
      let candidates =
        match st.key with
        | Some k ->
            Join_state.probe_entries_handle st.target_state k.handle
              (Tuple.get asg.(k.bound_slot) k.bound_idx)
        | None ->
            Join_state.fold_entries
              (fun acc tk x -> (tk, x) :: acc)
              [] st.target_state
      in
      List.iter
        (fun (cand_tick, cand) ->
          let checks = st.checks in
          let nc = Array.length checks in
          let ok = ref true in
          let j = ref 0 in
          while !ok && !j < nc do
            let c = checks.(!j) in
            if
              not
                (Value.equal (Tuple.get cand c.cand_idx)
                   (Tuple.get asg.(c.other_slot) c.other_idx))
            then ok := false;
            incr j
          done;
          if !ok then begin
            asg.(st.target) <- cand;
            ticks.(st.target) <- cand_tick;
            go (i + 1)
          end)
        candidates
    end
  in
  go 0

let run ~steps ~state_of ~schema_of ~origin tuple =
  let extend partials step =
    List.concat_map
      (fun assignment ->
        let state = state_of step.step_input in
        let candidates =
          match step.key_atoms with
          | atom :: _ ->
              let bound_stream, bound_attr =
                Predicate.other_side atom step.step_input
              in
              let bound_tuple = List.assoc bound_stream assignment in
              let v = Tuple.get_named bound_tuple bound_attr in
              let attr_idx =
                Schema.attr_index
                  (schema_of step.step_input)
                  (Predicate.attr_on atom step.step_input)
              in
              Join_state.probe state ~attrs:[ attr_idx ] [ v ]
          | [] -> Join_state.fold (fun acc x -> x :: acc) [] state
        in
        let extra_atoms =
          step.check_atoms
          @ match step.key_atoms with _ :: rest -> rest | [] -> []
        in
        List.filter_map
          (fun cand ->
            let ok =
              List.for_all
                (fun atom ->
                  let other, _ = Predicate.other_side atom step.step_input in
                  Predicate.eval atom cand (List.assoc other assignment))
                extra_atoms
            in
            if ok then Some ((step.step_input, cand) :: assignment) else None)
          candidates)
      partials
  in
  List.fold_left extend [ [ (origin, tuple) ] ] steps
