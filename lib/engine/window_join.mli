(** Sliding-window n-ary join — §2.2's *other* mechanism for bounding join
    state (the window joins of Carney et al. [3] / Golab & Özsu [7], cited
    as related work).

    Instead of proving tuples dead with punctuations, a window join simply
    evicts them: per input, either the last [n] tuples are kept
    ([Count n]) or tuples younger than [n] operator ticks ([Ticks n]; one
    tick per element the operator consumes). Windows make *any* query's
    state bounded — but unlike punctuation purging, eviction is lossy: a
    match that spans more than the window is silently missed. Bench [W1]
    quantifies this trade-off against the punctuation-aware {!Mjoin};
    punctuation elements are counted but otherwise ignored here. *)

type spec = Count of int | Ticks of int

val pp_spec : Format.formatter -> spec -> unit

type input = { name : string; schema : Relational.Schema.t }

(** [create ~window ~inputs ~predicates ()] — same input/predicate
    conventions as {!Mjoin.create}. [telemetry] (default {!Telemetry.null})
    receives [Evict] events and the [<op>.evicted_tuples] counter.
    @raise Invalid_argument on malformed inputs or a non-positive window. *)
val create :
  ?name:string ->
  ?telemetry:Telemetry.t ->
  window:spec ->
  inputs:input list ->
  predicates:Relational.Predicate.t ->
  unit ->
  Operator.t
