open Relational
module Element = Streams.Element
module Punctuation = Streams.Punctuation
module Cjq = Query.Cjq

type route = Local of int | Broadcast

type stream_info = {
  schema : Schema.t;
  attr : string;
  attr_idx : int;  (** index of [attr] in [schema] *)
}

type t = {
  shards : int;
  exact : bool;
  classes : (string * string) list list;
  by_stream : (string, stream_info) Hashtbl.t;
}

(* Equivalence closure of the equi-join atoms over (stream, attr) pairs:
   union-find with path compression, then grouped and sorted so the
   result is deterministic. *)
let classes_of_atoms preds =
  let parent : (string * string, string * string) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None ->
        Hashtbl.add parent x x;
        x
    | Some p when p = x -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      (* smaller representative wins, for determinism *)
      if ra < rb then Hashtbl.replace parent rb ra
      else Hashtbl.replace parent ra rb
  in
  List.iter
    (fun atom ->
      let s1, s2 = Predicate.streams_of atom in
      union (s1, Predicate.attr_on atom s1) (s2, Predicate.attr_on atom s2))
    preds;
  let members = Hashtbl.fold (fun x _ acc -> x :: acc) parent [] in
  let groups : (string * string, (string * string) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun x ->
      let r = find x in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups r) in
      Hashtbl.replace groups r (x :: existing))
    members;
  Hashtbl.fold (fun _ cls acc -> List.sort compare cls :: acc) groups []
  |> List.sort compare

let streams_of_class cls = List.sort_uniq compare (List.map fst cls)

(* The generalized constructor: a stream set (with declared schemes) plus
   an atom set, not necessarily from one query — the multi-query driver
   passes the union over every registered query. *)
let create_defs ~shards defs preds =
  if shards <= 0 then invalid_arg "Shard_router.create: shards must be positive";
  let classes = classes_of_atoms preds in
  let stream_names = List.map Streams.Stream_def.name defs in
  let def_of s = Streams.Stream_def.find defs s in
  (* (stream, attr) pairs pinned by a *single-attribute* scheme: a
     punctuation instantiated from such a scheme is a pure value
     punctuation on that attribute — the only kind [route_punct] can send
     to one owner. Routing choices prefer these so the stream's own
     punctuations stay local instead of triggering a purge round on every
     shard. *)
  let punctuated =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun sch ->
            match Streams.Scheme.punctuatable_attrs sch with
            | [ a ] -> Some (s, a)
            | _ -> None)
          (Streams.Stream_def.schemes (def_of s)))
      stream_names
  in
  let punct_score cls =
    List.length (List.filter (fun m -> List.mem m punctuated) cls)
  in
  (* A class spanning every stream makes the partitioning exact; among
     several, take the most punctuation-aligned (ties: first, the classes
     being sorted, so the choice is deterministic). *)
  let spanning =
    List.filter
      (fun cls ->
        List.for_all (fun s -> List.mem s (streams_of_class cls)) stream_names)
      classes
  in
  let routing_class =
    List.fold_left
      (fun best cls ->
        match best with
        | None -> Some cls
        | Some b -> if punct_score cls > punct_score b then Some cls else best)
      None spanning
  in
  let exact = routing_class <> None in
  let by_stream = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let chosen =
        match routing_class with
        | Some cls -> List.assoc_opt s cls
        | None -> (
            (* No spanning class (a cyclic query): each stream routes
               independently — on its punctuated join attribute when it
               has one, so its value punctuations go to one shard, else
               on its smallest join attribute. Matches still co-locate
               whenever the workload is key-aligned. *)
            let join_attrs =
              List.concat classes
              |> List.filter_map (fun (s', a) ->
                     if s' = s then Some a else None)
              |> List.sort_uniq compare
            in
            match
              List.filter (fun a -> List.mem (s, a) punctuated) join_attrs
            with
            | a :: _ -> Some a
            | [] -> ( match join_attrs with a :: _ -> Some a | [] -> None))
      in
      match chosen with
      | None -> () (* no join attribute: cannot happen for a valid CJQ *)
      | Some attr ->
          let schema = Streams.Stream_def.schema (def_of s) in
          Hashtbl.replace by_stream s
            { schema; attr; attr_idx = Schema.attr_index schema attr })
    stream_names;
  { shards; exact; classes; by_stream }

let create ~shards query =
  create_defs ~shards (Cjq.stream_defs query) (Cjq.predicates query)

(* Union of the registered queries' streams and atoms. Stream defs are
   deduped by name; a name declared with two different schemas is a
   registry-level conflict the driver must reject before routing. *)
let union_defs queries =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun q ->
      List.filter_map
        (fun def ->
          let name = Streams.Stream_def.name def in
          match Hashtbl.find_opt seen name with
          | Some schema ->
              if
                not
                  (Schema.equal schema (Streams.Stream_def.schema def))
              then
                invalid_arg
                  (Printf.sprintf
                     "Shard_router: stream %S declared with conflicting                       schemas"
                     name);
              None
          | None ->
              Hashtbl.add seen name (Streams.Stream_def.schema def);
              Some def)
        (Cjq.stream_defs q))
    queries

let create_multi ~shards queries =
  if queries = [] then invalid_arg "Shard_router.create_multi: no queries";
  let defs = union_defs queries in
  let preds =
    List.sort_uniq Predicate.atom_compare
      (List.concat_map Cjq.predicates queries)
  in
  create_defs ~shards defs preds

let shards t = t.shards
let exact t = t.exact
let classes t = t.classes

(* Inner joins tolerate key-aligned (approximate) partitioning: a
   mis-partitioned input loses matches but never invents results. The
   outer/anti kinds do not — "unmatched" is a negative claim, and a tuple
   separated from its partner would be released as a spurious unmatched
   result. They demand exact partitioning (which their binary equi-join
   shape always provides: every atom links the two streams, so one
   equivalence class spans both). *)
let sound_for t query =
  match Cjq.kind query with Cjq.Inner -> true | _ -> t.exact

(* Exactness restricted to a stream subset: some equivalence class holds
   every subset stream's *chosen* routing attribute, so all potential
   matches within the subset co-locate regardless of input alignment. *)
let exact_for t streams =
  streams <> []
  && List.exists
       (fun cls ->
         List.for_all
           (fun s ->
             match Hashtbl.find_opt t.by_stream s with
             | Some info -> List.mem (s, info.attr) cls
             | None -> false)
           streams)
       t.classes

(* Sharing raises the stakes: one mis-routed element would skew every
   subscriber at once, and outer-kind subscribers turn lost co-location
   into spurious unmatched emissions. Inner subscribers keep the
   single-query tolerance; every other kind must be exact on its own
   stream set. *)
let sound_for_shared t ~subscribers =
  List.for_all
    (fun q ->
      match Cjq.kind q with
      | Cjq.Inner -> true
      | _ -> exact_for t (Cjq.stream_names q))
    subscribers

let routing_attr t stream =
  Option.map
    (fun info -> info.attr)
    (Hashtbl.find_opt t.by_stream stream)

let owner t v = abs (Value.hash v) mod t.shards

let route_data t tuple =
  let stream = Schema.stream_name (Tuple.schema tuple) in
  match Hashtbl.find_opt t.by_stream stream with
  | None -> Broadcast (* unknown stream: every shard will ignore it *)
  | Some info -> Local (owner t (Tuple.get tuple info.attr_idx))

let route_punct t p =
  let stream = Schema.stream_name (Punctuation.schema p) in
  match Hashtbl.find_opt t.by_stream stream with
  | None -> Broadcast
  | Some info -> (
      (* Only a pure value punctuation on exactly the routing attribute
         pins all its matchable tuples to one shard; anything else can
         cover state anywhere. *)
      match Punctuation.constraints p with
      | [ (i, Punctuation.Const v) ] when i = info.attr_idx ->
          Local (owner t v)
      | _ -> Broadcast)

let route_element t = function
  | Element.Data tuple -> route_data t tuple
  | Element.Punct p -> route_punct t p
