open Relational
module Punctuation = Streams.Punctuation
module Element = Streams.Element

type semantics = Left | Right | Full | Anti

let pp_semantics ppf s =
  Fmt.string ppf
    (match s with
    | Left -> "left"
    | Right -> "right"
    | Full -> "full"
    | Anti -> "anti")

type side = {
  name : string;
  schema : Schema.t;
  schemes : Streams.Scheme.t list;
}

(* One input of the operator.

   [store] holds the tuples the partner side probes for inner matches;
   [pending] holds the preserved side's not-yet-matched tuples awaiting a
   partner punctuation that proves matchlessness. For the outer variants
   [pending] is a subset of [store] (same physical tuples, second index);
   the anti join never emits inner results, so its left side lives in
   [pending] alone and [store] stays empty. *)
type slot = {
  side : side;
  store : Join_state.t;
  pending : Join_state.t;
  puncts : Punct_store.t;
  join_idxs : int array;
  preserved : bool;  (* unmatched tuples of this side become results *)
  store_used : bool;  (* false only for the anti join's left side *)
  nullable_out : bool;  (* this side's output attributes may be Null *)
}

let create ?(name = "outer_join") ?(telemetry = Telemetry.null) ?contract
    ~semantics ~left ~right ~predicates () =
  if String.equal left.name right.name then
    invalid_arg "Outer_join.create: identical input names";
  if predicates = [] then invalid_arg "Outer_join.create: no join predicate";
  List.iter
    (fun atom ->
      if
        not
          (Predicate.involves atom left.name
          && Predicate.involves atom right.name)
      then
        invalid_arg
          (Fmt.str "Outer_join.create: predicate %a not between %s and %s"
             Predicate.pp_atom atom left.name right.name))
    predicates;
  let join_idxs_of (side : side) =
    List.map
      (fun atom ->
        Schema.attr_index side.schema (Predicate.attr_on atom side.name))
      predicates
    |> List.sort_uniq compare |> Array.of_list
  in
  let slot_of side ~preserved ~store_used ~nullable_out =
    {
      side;
      store = Join_state.create side.schema;
      pending = Join_state.create side.schema;
      puncts = Punct_store.create side.schema;
      join_idxs = join_idxs_of side;
      preserved;
      store_used;
      nullable_out;
    }
  in
  let l =
    slot_of left
      ~preserved:(match semantics with Left | Full | Anti -> true | Right -> false)
      ~store_used:(semantics <> Anti)
      ~nullable_out:(match semantics with Right | Full -> true | Left | Anti -> false)
  and r =
    slot_of right
      ~preserved:(match semantics with Right | Full -> true | Left | Anti -> false)
      ~store_used:true
      ~nullable_out:(match semantics with Left | Full -> true | Right | Anti -> false)
  in
  (* The anti join projects the output onto the left schema (renamed to the
     operator); the outer variants concatenate both sides. *)
  let out_schema =
    match semantics with
    | Anti -> Schema.make ~stream:name (Schema.attributes left.schema)
    | Left | Right | Full ->
        Schema.concat ~stream:name left.schema right.schema
  in
  let left_arity = Schema.arity left.schema in
  let right_arity = Schema.arity right.schema in
  let stats = ref Operator.empty_stats in
  let instrumented = Telemetry.enabled telemetry in
  let now = ref 0 in
  let pending_since = ref None in
  (match contract with
  | None -> ()
  | Some c ->
      Contract.register_shedder c ~op:name (fun () ->
          let states =
            [ l.store; l.pending; r.store; r.pending ]
            |> List.filter (fun s -> Join_state.size s > 0)
          in
          let bytes () =
            List.fold_left
              (fun acc s ->
                acc + (Join_state.mem_stats s).Join_state.approx_bytes)
              0 states
          in
          let before = bytes () in
          let victims =
            List.fold_left
              (fun acc s ->
                let want = (Join_state.size s + 3) / 4 in
                acc + Join_state.evict_oldest s ~count:want)
              0 states
          in
          (victims, max 0 (before - bytes ()))));
  let record_purge ~input ~trigger ~victims =
    if victims > 0 && instrumented then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      Telemetry.emit telemetry
        (Obs.Event.Purge { tick; op = name; input; trigger; victims; lag });
      Telemetry.incr ~by:victims telemetry (name ^ ".purged_tuples");
      Telemetry.observe ~n:victims telemetry (name ^ ".purge_lag") lag
    end
  in
  let emit_purge_round ~trigger ~victims =
    if instrumented then begin
      let tick = Telemetry.now telemetry in
      let lag =
        match !pending_since with Some t0 -> max 0 (tick - t0) | None -> 0
      in
      Telemetry.emit telemetry
        (Obs.Event.Purge_round { tick; op = name; trigger; victims; lag });
      Telemetry.incr telemetry (name ^ ".purge_rounds")
    end
  in
  let record_unmatched ~input ~trigger ~count =
    if count > 0 && instrumented then begin
      Telemetry.emit telemetry
        (Obs.Event.Unmatched
           { tick = Telemetry.now telemetry; op = name; input; trigger; count });
      Telemetry.incr ~by:count telemetry (name ^ ".unmatched_tuples")
    end
  in
  let this_and_other input_name =
    if String.equal input_name l.side.name then (l, r)
    else if String.equal input_name r.side.name then (r, l)
    else
      invalid_arg (Fmt.str "Outer_join %s: unknown input %s" name input_name)
  in
  (* The join-attribute bindings a tuple of [mine] imposes on the opposite
     stream — [Punct_store.covers] over the partner's punctuations decides
     both dead-on-arrival storage and unmatched-result release. *)
  let partner_bindings mine tup =
    let other_slot = if mine == l then r else l in
    List.map
      (fun atom ->
        let _, other_attr = Predicate.other_side atom mine.side.name in
        ( Schema.attr_index other_slot.side.schema other_attr,
          Tuple.get_named tup (Predicate.attr_on atom mine.side.name) ))
      predicates
  in
  let null_key mine tup =
    Array.exists (fun i -> Value.is_null (Tuple.get tup i)) mine.join_idxs
  in
  (* Inner-match probing, compiled once per origin: the two-slot walk from
     {!Probe.orders}, resolved to join-state handles up front. Slot 0 is the
     left side (the [store] states), matching the output attribute order. *)
  let names_arr = [| l.side.name; r.side.name |] in
  let schemas_arr = [| l.side.schema; r.side.schema |] in
  let states_arr =
    [| (if l.store_used then l.store else l.pending); r.store |]
  in
  let orders = Probe.orders [ l.side.name; r.side.name ] predicates in
  let prog_of slot =
    Probe.compile ~names:names_arr ~schemas:schemas_arr ~states:states_arr
      ~steps:(List.assoc slot.side.name orders)
  in
  let l_prog = prog_of l and r_prog = prog_of r in
  let prog_of slot = if slot == l then l_prog else r_prog in
  (* Null-padded unmatched result of a preserved side's tuple. *)
  let unmatched_result slot tup =
    match semantics with
    | Anti -> Tuple.make out_schema (Tuple.values tup)
    | Left | Right | Full ->
        let vals =
          if slot == l then
            Tuple.values tup @ List.init right_arity (fun _ -> Value.Null)
          else
            List.init left_arity (fun _ -> Value.Null) @ Tuple.values tup
        in
        Tuple.make out_schema vals
  in
  let emit_unmatched acc slot ~trigger tuples =
    match tuples with
    | [] -> ()
    | _ ->
        let count = List.length tuples in
        record_unmatched ~input:slot.side.name ~trigger ~count;
        stats := { !stats with tuples_out = !stats.tuples_out + count };
        List.iter
          (fun t -> acc := Element.Data (unmatched_result slot t) :: !acc)
          tuples
  in
  (* A punctuation on [mine] resolves the opposite side: covered pending
     tuples are *released* as unmatched results; covered matched tuples are
     purged. Only the latter count as [tuples_purged] — a release is an
     output, tracked by its Unmatched event. *)
  let resolve_opposite acc mine other ~trigger =
    let covered tup =
      Punct_store.covers mine.puncts (partner_bindings other tup)
    in
    let released = ref [] in
    let n_released =
      if other.preserved then
        Join_state.purge_if other.pending (fun tup ->
            if covered tup then begin
              released := tup :: !released;
              true
            end
            else false)
      else 0
    in
    emit_unmatched acc other ~trigger:"punct" !released;
    (* The released tuples also lived in [store] (outer variants); only the
       covered *matched* remainder counts as purge victims. For the anti
       join's left side the pending set is the whole state and every
       removal was emitted, so nothing is purged. *)
    let purged =
      if other.store_used then Join_state.purge_if other.store covered - n_released
      else 0
    in
    stats := { !stats with tuples_purged = !stats.tuples_purged + purged };
    record_purge ~input:other.side.name ~trigger ~victims:purged;
    purged
  in
  let propagate acc =
    let forward slot =
      (* Forwarding is held until no stored tuple of this side matches the
         punctuation: a pending tuple it covers may yet be released as an
         unmatched result, and a stored match may yet join a future partner
         — either would be late data contradicting the forwarded promise. *)
      let drained p =
        (not (Join_state.exists_matching slot.store p))
        && not (Join_state.exists_matching slot.pending p)
      in
      Punct_store.collect_forwardable slot.puncts ~drained
      |> List.filter_map (fun p ->
             (* A null-padded row sorts below every value, so an ordered
                (watermark) punctuation of a nullable side would be
                contradicted by later unmatched results: consume it. *)
             if slot.nullable_out && Punctuation.is_ordered p then None
             else
               match semantics with
               | Anti ->
                   Some (Punctuation.make out_schema (Punctuation.patterns p))
               | Left | Right | Full ->
                   let lifted =
                     List.map
                       (fun (idx, pat) ->
                         let attr =
                           (Schema.attr_at slot.side.schema idx).Schema.name
                         in
                         ( Schema.qualify_attr ~origin:slot.side.name attr,
                           pat ))
                       (Punctuation.constraints p)
                   in
                   Some (Punctuation.of_constraints out_schema lifted))
    in
    let ps =
      match semantics with
      | Anti -> forward l (* right punctuations are consumed *)
      | Left | Right | Full -> forward l @ forward r
    in
    stats := { !stats with puncts_out = !stats.puncts_out + List.length ps };
    List.iter (fun p -> acc := Element.Punct p :: !acc) ps
  in
  let process acc element =
    incr now;
    let mine, other = this_and_other (Element.stream_name element) in
    match element with
    | Element.Data tup -> (
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        let admit =
          if Punct_store.forbids mine.puncts tup then begin
            stats := { !stats with late_tuples = !stats.late_tuples + 1 };
            Contract.handle_late contract ~telemetry ~op:name
              ~input:mine.side.name tup
          end
          else `Admit
        in
        match admit with
        | `Drop -> ()
        | `Admit ->
            if null_key mine tup then begin
              (* SQL equality never accepts Null: the tuple is provably
                 matchless without any punctuation. A preserved side emits
                 it immediately; the other side drops it (never stored, so
                 it is not a purge victim). *)
              if mine.preserved then
                emit_unmatched acc mine ~trigger:"null_key" [ tup ]
            end
            else begin
              if instrumented then Telemetry.incr telemetry (name ^ ".probes");
              let results = ref [] in
              let matched = ref false in
              let partner_matches = ref [] in
              Probe.run_compiled (prog_of mine) tup ~emit:(fun arr ->
                  matched := true;
                  let partner = if mine == l then arr.(1) else arr.(0) in
                  partner_matches := partner :: !partner_matches;
                  if semantics <> Anti then
                    results := Tuple.concat out_schema arr.(0) arr.(1) :: !results);
              (* The matched partners leave the opposite pending set: for
                 the outer variants they stay in [store] (just no longer
                 unmatched); the anti join disqualifies them outright. *)
              if other.preserved && !matched then begin
                let victims = !partner_matches in
                let removed =
                  Join_state.purge_if other.pending (fun x ->
                      List.exists (fun y -> Tuple.equal x y) victims)
                in
                if semantics = Anti then begin
                  stats :=
                    { !stats with tuples_purged = !stats.tuples_purged + removed };
                  record_purge ~input:other.side.name ~trigger:"disqualified"
                    ~victims:removed
                end
              end;
              let covered =
                Punct_store.covers other.puncts (partner_bindings mine tup)
              in
              (if semantics = Anti && mine == l then begin
                 (* anti semantics: a matched left tuple can never be a
                    result; an unmatched covered one already is *)
                 if !matched then ()
                 else if covered then
                   emit_unmatched acc mine ~trigger:"immediate" [ tup ]
                 else
                   Join_state.insert
                     ?tick:(if instrumented then Some (Telemetry.now telemetry) else None)
                     mine.pending tup
               end
               else if covered then begin
                 (* dead on arrival for future matching; if preserved and
                    currently unmatched, that is an immediate unmatched
                    result *)
                 if mine.preserved && not !matched then
                   emit_unmatched acc mine ~trigger:"immediate" [ tup ]
               end
               else begin
                 let tick =
                   if instrumented then Some (Telemetry.now telemetry) else None
                 in
                 if mine.store_used then begin
                   Join_state.insert ?tick mine.store tup;
                   if instrumented then
                     Telemetry.incr telemetry (name ^ ".inserts")
                 end;
                 if mine.preserved && not !matched then
                   Join_state.insert ?tick mine.pending tup
               end);
              let n_results = List.length !results in
              stats := { !stats with tuples_out = !stats.tuples_out + n_results };
              List.iter (fun t -> acc := Element.Data t :: !acc) !results
            end)
    | Element.Punct p ->
        stats := { !stats with puncts_in = !stats.puncts_in + 1 };
        let informative = Punct_store.insert mine.puncts ~now:!now p in
        if not informative then
          Contract.handle_punct_rejected contract ~telemetry ~op:name
            ~input:mine.side.name ~ordered:(Punctuation.is_ordered p)
        else begin
          if !pending_since = None then
            pending_since := Some (Telemetry.now telemetry);
          stats := { !stats with purge_rounds = !stats.purge_rounds + 1 };
          let victims = resolve_opposite acc mine other ~trigger:"eager" in
          emit_purge_round ~trigger:"eager" ~victims;
          pending_since := None
        end;
        propagate acc
  in
  let push_batch arr =
    let acc = ref [] in
    Array.iter (process acc) arr;
    List.rev !acc
  in
  let push element = push_batch [| element |] in
  let flush () =
    (* End of stream proves no partner will ever arrive: every pending
       tuple is an unmatched result, and whatever the stores still hold can
       never produce output — the final-purge dual of Mjoin's flush. *)
    let acc = ref [] in
    let purged =
      List.fold_left
        (fun total slot ->
          let released =
            if slot.preserved then begin
              let held = ref [] in
              let n =
                Join_state.purge_if slot.pending (fun t ->
                    held := t :: !held;
                    true)
              in
              emit_unmatched acc slot ~trigger:"flush" (List.rev !held);
              n
            end
            else 0
          in
          if not slot.store_used then total
          else begin
            (* released tuples also lived in the store; only the matched
               remainder counts as purge victims *)
            let victims =
              Join_state.purge_if slot.store (fun _ -> true) - released
            in
            record_purge ~input:slot.side.name ~trigger:"flush" ~victims;
            total + victims
          end)
        0 [ l; r ]
    in
    if purged > 0 then begin
      stats :=
        {
          !stats with
          tuples_purged = !stats.tuples_purged + purged;
          purge_rounds = !stats.purge_rounds + 1;
        };
      emit_purge_round ~trigger:"flush" ~victims:purged
    end;
    propagate acc;
    List.rev !acc
  in
  let save () =
    let module W = Streams.Wire.W in
    let b = Buffer.create 4096 in
    W.u8 b 1;
    Operator.write_stats b !stats;
    W.int b !now;
    W.option W.int b !pending_since;
    List.iter
      (fun slot ->
        Join_state.write_snapshot b slot.store;
        Join_state.write_snapshot b slot.pending;
        Punct_store.write_snapshot b slot.puncts)
      [ l; r ];
    Buffer.contents b
  in
  let load blob =
    let module R = Streams.Wire.R in
    let r' = R.of_string blob in
    let v = R.u8 r' in
    if v <> 1 then
      raise
        (Streams.Wire.Corrupt
           (Printf.sprintf "Outer_join snapshot version %d, expected 1" v));
    let st = Operator.read_stats r' in
    let n = R.int r' in
    let ps = R.option R.int r' in
    List.iter
      (fun slot ->
        Join_state.read_snapshot slot.store r';
        Join_state.read_snapshot slot.pending r';
        Punct_store.read_snapshot slot.puncts r')
      [ l; r ];
    R.expect_end r';
    stats := st;
    now := n;
    pending_since := ps
  in
  {
    Operator.name;
    out_schema;
    input_names = [ left.name; right.name ];
    push;
    push_batch;
    flush;
    data_state_size =
      (fun () ->
        List.fold_left
          (fun acc slot ->
            acc
            + Join_state.size (if slot.store_used then slot.store else slot.pending))
          0 [ l; r ]);
    punct_state_size =
      (fun () -> Punct_store.size l.puncts + Punct_store.size r.puncts);
    index_state_size =
      (fun () ->
        List.fold_left
          (fun acc slot ->
            acc + Join_state.index_entries slot.store
            + Join_state.index_entries slot.pending)
          0 [ l; r ]);
    state_bytes =
      (fun () ->
        List.fold_left
          (fun acc slot ->
            acc
            + (Join_state.mem_stats
                 (if slot.store_used then slot.store else slot.pending))
                .Join_state.approx_bytes)
          0 [ l; r ]);
    stats =
      (fun () ->
        let dropped =
          Punct_store.rejected_count l.puncts
          + Punct_store.rejected_count r.puncts
        in
        let subsumed =
          Punct_store.subsumed_count l.puncts
          + Punct_store.subsumed_count r.puncts
        in
        {
          !stats with
          puncts_dropped = dropped;
          puncts_purged = !stats.puncts_purged + subsumed;
        });
    persistence = Operator.Snapshot { save; load };
  }
