(** The one state-byte estimator every operator shares.

    PR 1 introduced memory-true accounting for {!Join_state.mem_stats};
    {!Dedup} and {!Groupby} used to apply their own hard-coded per-entry
    word multipliers (6 and 8), so a byte-slope alarm from the watchdog
    meant different things depending on which operator raised it. This
    module centralizes the estimate so "approximate resident bytes" is the
    same currency everywhere: a hash-table entry holding [width] boxed
    values costs a table slot plus per-value boxes
    ([entry_overhead_words + words_per_value * width] words).

    These are deliberate estimates — the point is that slopes and
    cross-operator comparisons are meaningful, not the exact byte. *)

(** Bytes per machine word ([Sys.word_size / 8]). *)
val word : int

(** Words charged per stored boxed value (box header + field + a share of
    the surrounding list/array cell). *)
val words_per_value : int

(** Words charged per hash-table entry regardless of its width (bucket
    slot, entry record, hashing overhead). *)
val entry_overhead_words : int

(** [table_entry_bytes ~width] — cost of one table entry carrying [width]
    boxed values (key and payload combined). *)
val table_entry_bytes : width:int -> int

(** Cost of one list cell (e.g. a secondary-index id entry). *)
val list_cell_bytes : int

(** [tuple_bytes schema] — cost of one stored tuple of [schema]: the tuple
    width is the schema arity, the overhead is the table entry holding
    it. This is exactly the per-tuple figure {!Join_state.mem_stats}
    charges. *)
val tuple_bytes : Relational.Schema.t -> int

(** [keyed_table_bytes ~key_width ~payload_width ~entries] — a whole
    table: [entries] entries of [key_width + payload_width] values each. *)
val keyed_table_bytes : key_width:int -> payload_width:int -> entries:int -> int
