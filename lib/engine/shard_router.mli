(** Punctuation-aligned hash partitioning of a query's input streams.

    The router decides, per stream element, which shard(s) of a
    {!Parallel_executor} must see it:

    - a {b data tuple} goes to exactly one shard — the hash of its value
      on the stream's {e routing attribute} modulo the shard count;
    - a {b value punctuation} that pins exactly the routing attribute of
      its stream to a constant goes to the shard owning that constant:
      every tuple the punctuation can ever match lives there, so
      delivering it anywhere else is dead weight;
    - everything else — wildcard-heavy patterns, multi-attribute
      punctuations, order punctuations / heartbeats ([Less_than]) — is
      {b broadcast}: such a punctuation can cover tuples on any shard,
      and a punctuation is a pure fact, so over-delivery is always
      sound (a shard with no matching state simply purges nothing).

    Routing attributes come from the {e join-attribute equivalence
    classes}: the equivalence closure of the query's equi-join atoms
    over [(stream, attribute)] pairs. Attributes in one class must carry
    equal values in any join result, so hashing each stream on its
    member of a common class sends every potential match set to one
    shard. The partitioning is {!exact} — correct for arbitrary inputs —
    when a single class spans {e all} streams (e.g. a star join on a
    shared key). For cyclic queries like the Figure 5 triangle no class
    spans all three streams; the router then picks the widest class and
    deterministic per-stream fallbacks, which still co-locates matches
    whenever the workload is key-aligned (every join attribute of a
    tuple carries the same round key — precisely what
    [Workload.Synth.round_trace] generates). See docs/SHARDING.md. *)

type t

type route =
  | Local of int  (** deliver to this shard only *)
  | Broadcast  (** deliver to every shard *)

(** [create ~shards query] — routing tables for [query] over [shards]
    shards. @raise Invalid_argument when [shards <= 0]. *)
val create : shards:int -> Query.Cjq.t -> t

(** [create_multi ~shards queries] — one routing table for a whole
    registry: the equivalence closure runs over the {e union} of all
    queries' equi-join atoms and the stream set is the union of their
    stream definitions, so one delivery decision serves every subscriber
    (shared operators included).
    @raise Invalid_argument on an empty list, [shards <= 0], or a stream
    name declared with conflicting schemas. *)
val create_multi : shards:int -> Query.Cjq.t list -> t

val shards : t -> int

(** [exact t] — one join-attribute equivalence class spans every stream
    of the query, so hash partitioning is correct for {e arbitrary}
    inputs, not just key-aligned ones. *)
val exact : t -> bool

(** [sound_for t query] — is this partitioning sound for [query]'s join
    kind? Inner joins tolerate key-aligned (approximate) partitioning:
    mis-partitioned inputs lose matches but never invent results. The
    outer/anti kinds do not — an unmatched verdict is a {e negative}
    claim, and a tuple separated from its partner would be released as a
    spurious unmatched result — so they require {!exact} partitioning
    (always true for their binary equi-join shape). Checked by
    {!Parallel_executor.create}. *)
val sound_for : t -> Query.Cjq.t -> bool

(** [exact_for t streams] — {!exact} restricted to a stream subset: some
    equivalence class contains every listed stream's chosen routing
    attribute, so matches within the subset co-locate for arbitrary
    inputs. This is what a shared sub-plan over [streams] needs from the
    partitioning. [false] on an empty list or an unknown stream. *)
val exact_for : t -> string list -> bool

(** [sound_for_shared t ~subscribers] — {!sound_for} lifted to a
    multi-query run: every subscriber query must tolerate the
    partitioning. Inner subscribers keep the single-query tolerance for
    key-aligned inputs; outer/anti subscribers require {!exact_for} on
    their own stream sets, because a mis-routed partner would surface as a
    spurious unmatched emission in {e every} query sharing the state. *)
val sound_for_shared : t -> subscribers:Query.Cjq.t list -> bool

(** [routing_attr t stream] — the attribute [stream]'s tuples are hashed
    on; [None] for streams the query does not read. *)
val routing_attr : t -> string -> string option

(** The join-attribute equivalence classes, each sorted, classes sorted
    by first member — primarily for docs, tests and [--shards] verbose
    output. *)
val classes : t -> (string * string) list list

val route_data : t -> Relational.Tuple.t -> route
val route_punct : t -> Streams.Punctuation.t -> route
val route_element : t -> Streams.Element.t -> route
