(** Shared execution of a registry of continuous join queries — the
    engine-layer DAG that {!Core.Planner.plan_shared} describes.

    The single-query {!Executor} compiles a {e tree}; here the compiled
    object is a {e DAG}: each committed shared group becomes one operator
    tree (one join state, one punctuation store) whose root output — data
    results {e and} propagated punctuations — fans out to every subscribing
    query. A subscriber with residual streams joins the shared output with
    them in its own residual tree; the shared root is presented to that
    tree as a {e pseudo input stream} whose schema is the shared output
    schema and whose punctuation schemes are the derived schemes the shared
    block provably emits (see {!Executor.derived_schemes}). A fully covered
    subscriber consumes the shared output directly. Queries the planner
    left unshared run their independent trees unchanged.

    Per-query answers are byte-equal to independent execution: data outputs
    of a join do not depend on purge policy or punctuation handling (purge
    only removes provably unmatchable state), so sharing changes {e where}
    state lives and {e how much} of it there is, never what is emitted.
    {!Executor.output_hash} digests are compared by the tests and CI.

    Operator names carry their owner: residual/independent operators of
    query [q] are named [q/J1], [q/J2], …; shared operators [shared:G1/J1].
    The observability plane splits these into a [query] label
    ({!Obs.Openmetrics}), so per-query rates break out while shared state
    is counted once, under its group's name.

    Contracts are not threaded through multi-query execution yet: the
    [contract] field of the supplied config is ignored. *)

type t

(** [create ?config ?share registry] — plan (via
    {!Core.Planner.plan_shared}) and compile the DAG. [config] is the
    compile configuration every unit shares — its [op_prefix] is
    overridden per unit and its [contract] is ignored; its [telemetry]
    handle is shared by all operators. [share:false] compiles every query
    independently (the baseline).
    @raise Invalid_argument when registered queries declare the same
    stream name with conflicting schemas. *)
val create :
  ?config:Executor.Config.t -> ?share:bool -> Query.Query_registry.t -> t

val plan : t -> Core.Planner.multi_plan
val registry : t -> Query.Query_registry.t

(** [stream_defs t] — the union of all registered queries' stream
    definitions (deduped by name); the input surface of the DAG. *)
val stream_defs : t -> Streams.Stream_def.t list

(** [feed_element t e] — push one raw-stream element through the DAG:
    every shared group reading [e]'s stream consumes it once, the group
    outputs fan out to subscribers, residual/independent trees consume
    [e] directly. Returns this tick's per-query outputs (queries with no
    output this tick are omitted). *)
val feed_element : t -> Streams.Element.t -> (string * Streams.Element.t list) list

(** [flush t] — end-of-input: flush shared trees, fan their flush outputs
    to subscribers, then flush residual/independent trees. Call once. *)
val flush : t -> (string * Streams.Element.t list) list

(** Per-query answer channel of a {!run}. *)
type query_result = {
  outputs : Streams.Element.t list;  (** in emission order *)
  emitted : int;  (** data tuples *)
  hash : string;  (** {!Executor.output_hash} of [outputs] *)
}

type result = {
  per_query : (string * query_result) list;  (** in registry order *)
  metrics : Metrics.t;  (** aggregate state series across the whole DAG *)
  consumed : int;
  emitted : int;  (** data tuples across all queries *)
}

(** [run ?sample_every ?label ?exporter t elements] — drive the DAG from
    one interleaved sequence, mirroring {!Executor.run}: elements of
    streams no query reads are ignored but still counted as ticks, state
    is sampled on the [sample_every] grid (telemetry [Sample] events,
    per-operator gauges, watchdog feeding, exporter snapshots), and
    [Run_start]/[Run_end] frame the trace. Shared state is counted once
    in every total. *)
val run :
  ?sample_every:int ->
  ?label:string ->
  ?exporter:Obs.Exporter.t ->
  t ->
  Streams.Element.t Seq.t ->
  result

val total_data_state : t -> int
val total_punct_state : t -> int
val total_index_state : t -> int
val total_state_bytes : t -> int

(** [state_breakdown t] — per-operator state grouped by owner: shared
    groups first (owner ["shared:G1"], …), then queries in registry order
    (owner = qid). Shared operators appear exactly once. *)
val state_breakdown : t -> (string * Executor.breakdown list) list

(** [report ?meta t result] — the machine-readable run report over {e all}
    operators of the DAG (shared ones once); replaying the telemetry
    trace reproduces its counters, so [pstream_obs verify] accepts
    shared-run traces. Adds a ["queries"] meta entry and per-query
    consumed/emitted/hash entries. *)
val report :
  ?meta:(string * Obs.Json.t) list -> t -> result -> Obs.Report.t

type sharded_result = {
  s_per_query : (string * query_result) list;
  s_consumed : int;
  s_emitted : int;
  s_shards : int;
}

(** [run_sharded ?config ?share ?batch_cap ~shards registry elements] —
    the sharded multi-query driver: one {!create}d DAG per shard (each
    with its own state and a null telemetry handle), one
    {!Shard_router.create_multi} routing table over the union of all
    queries, elements shipped in batches over {!Spsc} queues to worker
    domains, per-query outputs merged deterministically by (sequence,
    shard, emission rank). Per-query output hashes equal the sequential
    {!run}'s on key-aligned workloads — and on arbitrary workloads when
    the router is exact ({!Shard_router.exact_for} on each query's
    streams).
    @raise Invalid_argument when [shards <= 0] or
    {!Shard_router.sound_for_shared} rejects the subscriber set. *)
val run_sharded :
  ?config:Executor.Config.t ->
  ?share:bool ->
  ?batch_cap:int ->
  shards:int ->
  Query.Query_registry.t ->
  Streams.Element.t Seq.t ->
  sharded_result
