(** Punctuation-aware symmetric binary hash join — the PJoin-style operator
    of Ding et al. [6] that the paper cites as prior art.

    Functionally equivalent to a 2-input {!Mjoin} (tests cross-validate
    them), but purging is *direct*: a punctuation from one input that pins a
    join attribute immediately probes the opposite state's hash index and
    drops the dead partners, instead of running the generic chained purge
    scan. This is both the binary-join baseline for the benchmarks and an
    independently-coded implementation of §3.1's purge rule. *)

type side = {
  name : string;
  schema : Relational.Schema.t;
  schemes : Streams.Scheme.t list;
}

(** [create ~left ~right ~predicates ()] — [predicates] atoms must all link
    [left] and [right]. [telemetry] (default {!Telemetry.null}) receives
    structured purge events (including [dead_on_arrival] drops) and
    probe/insert/purge-lag measurements. [contract], when given, decides
    the fate of late tuples and punctuation anomalies (detection and
    counting happen regardless) and receives an emergency state-shedder.
    @raise Invalid_argument otherwise. *)
val create :
  ?name:string ->
  ?policy:Purge_policy.t ->
  ?telemetry:Telemetry.t ->
  ?contract:Contract.t ->
  left:side ->
  right:side ->
  predicates:Relational.Predicate.t ->
  unit ->
  Operator.t
