module Element = Streams.Element

type t = {
  enabled : bool;
  sink : Obs.Sink.t;
  registry : Obs.Registry.t;
  watchdog : Obs.Watchdog.t option;
  clock : int ref;
  time : unit -> int;
}

let default_time () = int_of_float (Sys.time () *. 1e9)

(* The shared disabled handle: no recording operation touches it, so one
   value serves every uninstrumented compile. *)
let null =
  {
    enabled = false;
    sink = Obs.Sink.null;
    registry = Obs.Registry.create ();
    watchdog = None;
    clock = ref 0;
    time = (fun () -> 0);
  }

let create ?(sink = Obs.Sink.null) ?watchdog ?(time_ns = default_time) () =
  {
    enabled = true;
    sink;
    registry = Obs.Registry.create ();
    watchdog;
    clock = ref 0;
    time = time_ns;
  }

let enabled t = t.enabled
let registry t = t.registry
let watchdog t = t.watchdog

let alarms t =
  match t.watchdog with Some w -> Obs.Watchdog.alarms w | None -> []

let now t = !(t.clock)
let set_clock t tick = if t.enabled then t.clock := tick
let emit t e = if t.enabled then t.sink.Obs.Sink.emit e
let time_ns t = t.time ()
let incr ?by t name = if t.enabled then Obs.Registry.incr ?by t.registry name

let set_gauge ?agg t name v =
  if t.enabled then Obs.Registry.set_gauge ?agg t.registry name v

let observe ?n t name v = if t.enabled then Obs.Registry.observe ?n t.registry name v
let close t = if t.enabled then t.sink.Obs.Sink.close ()

let wrap_op t (op : Operator.t) =
  if not t.enabled then op
  else begin
    let c_tuples_in = op.name ^ ".tuples_in"
    and c_puncts_in = op.name ^ ".puncts_in"
    and c_tuples_out = op.name ^ ".tuples_out"
    and c_puncts_out = op.name ^ ".puncts_out"
    and h_push = op.name ^ ".push_ns" in
    let record_outs outs =
      let tuples, puncts =
        List.fold_left
          (fun (d, p) e ->
            if Element.is_data e then (d + 1, p) else (d, p + 1))
          (0, 0) outs
      in
      if tuples > 0 then begin
        incr ~by:tuples t c_tuples_out;
        emit t (Obs.Event.Tuple_out { tick = now t; op = op.name; count = tuples })
      end;
      if puncts > 0 then begin
        incr ~by:puncts t c_puncts_out;
        emit t (Obs.Event.Punct_out { tick = now t; op = op.name; count = puncts })
      end
    in
    let push e =
      let input = Element.stream_name e in
      (match e with
      | Element.Data _ ->
          incr t c_tuples_in;
          emit t (Obs.Event.Tuple_in { tick = now t; op = op.name; input })
      | Element.Punct _ ->
          incr t c_puncts_in;
          emit t (Obs.Event.Punct_in { tick = now t; op = op.name; input }));
      let t0 = t.time () in
      let outs = op.push e in
      observe t h_push (t.time () - t0);
      record_outs outs;
      outs
    in
    let push_batch arr =
      (* Same per-element in-events as the element path (replay must not be
         able to tell the two apart); one timing observation per batch call
         so push_ns reflects the amortized cost. *)
      Array.iter
        (fun e ->
          let input = Element.stream_name e in
          match e with
          | Element.Data _ ->
              incr t c_tuples_in;
              emit t (Obs.Event.Tuple_in { tick = now t; op = op.name; input })
          | Element.Punct _ ->
              incr t c_puncts_in;
              emit t (Obs.Event.Punct_in { tick = now t; op = op.name; input }))
        arr;
      let t0 = t.time () in
      let outs = op.push_batch arr in
      observe t h_push (t.time () - t0);
      record_outs outs;
      outs
    in
    let flush () =
      let outs = op.flush () in
      record_outs outs;
      outs
    in
    { op with push; push_batch; flush }
  end
