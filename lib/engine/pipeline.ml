module Element = Streams.Element

let compose stages =
  match stages with
  | [] -> invalid_arg "Pipeline.compose: empty pipeline"
  | first :: rest ->
      let rec check prev = function
        | [] -> ()
        | (stage : Operator.t) :: more ->
            let out =
              Relational.Schema.stream_name (prev : Operator.t).out_schema
            in
            if not (List.mem out stage.input_names) then
              invalid_arg
                (Printf.sprintf
                   "Pipeline.compose: %s outputs %S but %s reads {%s}"
                   prev.name out stage.name
                   (String.concat ", " stage.input_names));
            check stage more
      in
      check first rest;
      let last = List.nth stages (List.length stages - 1) in
      let through downstream elements =
        List.fold_left
          (fun acc (stage : Operator.t) ->
            List.concat_map stage.push acc)
          elements downstream
      in
      let push element = through rest (first.push element) in
      let flush () =
        (* flush each stage in order, pushing its drain through the rest *)
        let rec go upstreamed = function
          | [] -> upstreamed
          | (stage : Operator.t) :: more ->
              let drained = List.concat_map stage.push upstreamed in
              go (drained @ stage.flush ()) more
        in
        go (first.flush ()) rest
      in
      {
        Operator.name =
          String.concat " | " (List.map (fun (s : Operator.t) -> s.name) stages);
        out_schema = last.out_schema;
        input_names = first.input_names;
        push;
        push_batch = Operator.batch_of_push push;
        flush;
        data_state_size =
          (fun () ->
            List.fold_left
              (fun acc (s : Operator.t) -> acc + s.data_state_size ())
              0 stages);
        punct_state_size =
          (fun () ->
            List.fold_left
              (fun acc (s : Operator.t) -> acc + s.punct_state_size ())
              0 stages);
        index_state_size =
          (fun () ->
            List.fold_left
              (fun acc (s : Operator.t) -> acc + s.index_state_size ())
              0 stages);
        state_bytes =
          (fun () ->
            List.fold_left
              (fun acc (s : Operator.t) -> acc + s.state_bytes ())
              0 stages);
        stats =
          (fun () ->
            List.fold_left
              (fun acc (s : Operator.t) ->
                let st = s.stats () in
                {
                  acc with
                  Operator.tuples_purged =
                    acc.Operator.tuples_purged + st.Operator.tuples_purged;
                  purge_rounds = acc.Operator.purge_rounds + st.Operator.purge_rounds;
                })
              (first.stats ()) (List.tl stages));
        persistence =
          (* composite: every stage must be persistable; stage blobs are
             length-prefixed in pipeline order *)
          (match
             List.find_map
               (fun (s : Operator.t) ->
                 match s.persistence with
                 | Operator.Volatile reason -> Some (s.name ^ ": " ^ reason)
                 | Operator.Stateless | Operator.Snapshot _ -> None)
               stages
           with
          | Some reason -> Operator.Volatile reason
          | None ->
              Operator.Snapshot
                {
                  save =
                    (fun () ->
                      let b = Buffer.create 1024 in
                      Streams.Wire.W.u8 b 1;
                      Streams.Wire.W.list
                        (fun b (s : Operator.t) ->
                          match s.persistence with
                          | Operator.Stateless -> Streams.Wire.W.string b ""
                          | Operator.Snapshot { save; _ } ->
                              Streams.Wire.W.string b (save ())
                          | Operator.Volatile _ -> assert false)
                        b stages;
                      Buffer.contents b);
                  load =
                    (fun blob ->
                      let r = Streams.Wire.R.of_string blob in
                      let v = Streams.Wire.R.u8 r in
                      if v <> 1 then
                        raise
                          (Streams.Wire.Corrupt
                             (Printf.sprintf
                                "Pipeline snapshot version %d, expected 1" v));
                      let blobs =
                        Streams.Wire.R.list Streams.Wire.R.string r
                      in
                      Streams.Wire.R.expect_end r;
                      if List.length blobs <> List.length stages then
                        raise
                          (Streams.Wire.Corrupt
                             "Pipeline snapshot: stage count mismatch");
                      List.iter2
                        (fun (s : Operator.t) blob ->
                          match s.persistence with
                          | Operator.Stateless -> ()
                          | Operator.Snapshot { load; _ } -> load blob
                          | Operator.Volatile _ -> assert false)
                        stages blobs);
                });
      }
