(** Punctuation-unblocked anti semi-join: emit the left tuples that never
    find a right match.

    Over infinite streams this operator is *impossible* without
    punctuations — "no right match will ever arrive" is unknowable — which
    makes it the sharpest showcase of punctuation semantics (Tucker et
    al.'s motivating class): a buffered left tuple is released exactly when
    a right punctuation covers its join values while no stored right match
    exists.

    Semantics and state:
    - a left tuple with a current right match is discarded immediately
      (it can never be an anti-join result);
    - otherwise it is buffered until a right punctuation proves no future
      match (→ emitted) or a right match arrives (→ discarded);
    - right tuples are remembered only to disqualify future left arrivals,
      and are purged once a left punctuation rules those arrivals out;
    - left punctuations are forwarded — but only once every buffered left
      tuple they cover is resolved, since a later release would be late
      data contradicting the forwarded promise; right punctuations are
      consumed;
    - [flush] releases every still-buffered left tuple: end of stream
      proves no right partner will arrive.

    The output schema is the left schema, renamed to the operator.

    This is {!Outer_join.create} with [Anti] semantics; see there for the
    accounting rules (never-stored tuples are not purge victims; releases
    are tracked by {!Obs.Event.Unmatched} events, not [tuples_purged]). *)

(** [create ~left ~right ~predicates ()] — [predicates] atoms must all link
    the two inputs (conjunctive join condition).
    @raise Invalid_argument otherwise. *)
val create :
  ?name:string ->
  ?telemetry:Telemetry.t ->
  ?contract:Contract.t ->
  left:Relational.Schema.t ->
  right:Relational.Schema.t ->
  predicates:Relational.Predicate.t ->
  unit ->
  Operator.t
