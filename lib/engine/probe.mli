(** Shared probe machinery for the n-ary symmetric joins ({!Mjoin},
    {!Window_join}): a spanning walk of the operator-level join graph from
    each input, and the assignment-extension loop that evaluates it against
    hash-indexed join states. *)

(** One step of a probe walk: visit [step_input], hash-probing on the first
    atom connecting it to an already-bound input and verifying the rest. *)
type step = {
  step_input : string;
  key_atoms : Relational.Predicate.atom list;
  check_atoms : Relational.Predicate.atom list;
}

(** [orders names predicates] precomputes, per input, the walk visiting all
    other inputs (joined-first; a disconnected remainder degrades to a scan
    step). *)
val orders :
  string list -> Relational.Predicate.t -> (string * step list) list

(** A probe walk compiled to integer slot ids: input names, attribute
    names and index lookups are resolved once at plan time, so the
    per-push loop touches only arrays and pre-resolved
    {!Join_state.handle}s. *)
type prog

(** [compile ~names ~schemas ~states ~steps] compiles one walk. [names],
    [schemas] and [states] are parallel arrays over the operator's inputs
    (slot order); [steps] is the walk from {!orders}. Resolving each keyed
    step's handle builds the hash index up front instead of on first
    probe. *)
val compile :
  names:string array ->
  schemas:Relational.Schema.t array ->
  states:Join_state.t array ->
  steps:step list ->
  prog

(** [run_compiled prog tuple ~emit] walks [prog] with the origin slot bound
    to [tuple] and calls [emit] once per complete assignment with the
    slot-indexed tuple array. The array is reused across emissions — [emit]
    must copy what it keeps. Emission order matches {!run}. *)
val run_compiled :
  prog -> Relational.Tuple.t -> emit:(Relational.Tuple.t array -> unit) -> unit

(** [run_compiled_entries prog tuple ~tick ~emit] — instrumented twin of
    {!run_compiled} for result-latency spans: a second array, parallel to
    the assignment, carries each matched tuple's insertion tick (the origin
    slot holds [tick]). Both arrays are reused across emissions. *)
val run_compiled_entries :
  prog ->
  Relational.Tuple.t ->
  tick:int ->
  emit:(Relational.Tuple.t array -> int array -> unit) ->
  unit

(** [run ~steps ~state_of ~schema_of ~origin tuple] — every complete
    assignment (input name -> matched tuple, the origin bound to [tuple])
    produced by walking [steps] against the current states. *)
val run :
  steps:step list ->
  state_of:(string -> Join_state.t) ->
  schema_of:(string -> Relational.Schema.t) ->
  origin:string ->
  Relational.Tuple.t ->
  (string * Relational.Tuple.t) list list
