open Relational
module Element = Streams.Element

type spec = Count of int | Ticks of int

let pp_spec ppf = function
  | Count n -> Fmt.pf ppf "count(%d)" n
  | Ticks n -> Fmt.pf ppf "ticks(%d)" n

type input = { name : string; schema : Schema.t }

let create ?(name = "window_join") ?(telemetry = Telemetry.null) ~window
    ~inputs ~predicates () =
  (match window with
  | Count n | Ticks n ->
      if n <= 0 then invalid_arg "Window_join.create: non-positive window");
  if List.length inputs < 2 then
    invalid_arg "Window_join.create: need at least two inputs";
  let names = List.map (fun i -> i.name) inputs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Window_join.create: duplicate input names";
  List.iter
    (fun atom ->
      let s1, s2 = Predicate.streams_of atom in
      if not (List.mem s1 names && List.mem s2 names) then
        invalid_arg
          (Fmt.str "Window_join.create: predicate %a references unknown input"
             Predicate.pp_atom atom))
    predicates;
  let states =
    List.map (fun input -> (input.name, Join_state.create input.schema)) inputs
  in
  let state_of n = List.assoc n states in
  let schema_of n =
    (List.find (fun i -> i.name = n) inputs).schema
  in
  let out_schema =
    Schema.concat_all ~stream:name (List.map (fun i -> i.schema) inputs)
  in
  let orders = Probe.orders names predicates in
  let stats = ref Operator.empty_stats in
  let now = ref 0 in
  let assemble assignment =
    Tuple.make out_schema
      (List.concat_map
         (fun i -> Tuple.values (List.assoc i.name assignment))
         inputs)
  in
  (* Time windows are evicted before probing (a probe must only see the
     last [n] ticks); count windows after inserting (cap each state at its
     last [n] tuples). *)
  let evict_stale () =
    let removed =
      List.fold_left
        (fun acc (input, state) ->
          let victims =
            match window with
            | Ticks n -> Join_state.evict_before state ~tick:(!now - n)
            | Count n ->
                Join_state.evict_before state
                  ~tick:(Join_state.insertions state - n)
          in
          if victims > 0 && Telemetry.enabled telemetry then begin
            Telemetry.emit telemetry
              (Obs.Event.Evict
                 { tick = Telemetry.now telemetry; op = name; input;
                   victims });
            Telemetry.incr ~by:victims telemetry (name ^ ".evicted_tuples")
          end;
          acc + victims)
        0 states
    in
    stats := { !stats with tuples_purged = !stats.tuples_purged + removed }
  in
  let process acc element =
    incr now;
    let input_name = Element.stream_name element in
    if not (List.mem input_name names) then
      invalid_arg
        (Fmt.str "Window_join %s: element for unknown input %s" name input_name);
    match element with
    | Element.Punct _ ->
        (* windows ignore punctuations: eviction is purely positional *)
        stats := { !stats with puncts_in = !stats.puncts_in + 1 }
    | Element.Data tup ->
        stats := { !stats with tuples_in = !stats.tuples_in + 1 };
        (match window with Ticks _ -> evict_stale () | Count _ -> ());
        let results =
          Probe.run
            ~steps:(List.assoc input_name orders)
            ~state_of ~schema_of ~origin:input_name tup
          |> List.map assemble
        in
        (match window with
        | Ticks _ -> Join_state.insert ~tick:!now (state_of input_name) tup
        | Count _ ->
            Join_state.insert (state_of input_name) tup;
            evict_stale ());
        stats :=
          { !stats with tuples_out = !stats.tuples_out + List.length results };
        List.iter (fun t -> acc := Element.Data t :: !acc) results
  in
  let push_batch arr =
    let acc = ref [] in
    Array.iter (process acc) arr;
    List.rev !acc
  in
  let push element = push_batch [| element |] in
  (* Eviction only runs on data arrivals, but [now] advances on every
     element: trailing punctuations (or an idle tail) can leave tuples in
     the state that the window invariant already expired. A final eviction
     round reconciles the end-of-run state and its Evict-event accounting
     (windows produce no unmatched results, so flush emits no data). *)
  let flush () =
    (match window with Ticks _ -> evict_stale () | Count _ -> ());
    []
  in
  let save () =
    let module W = Streams.Wire.W in
    let b = Buffer.create 1024 in
    W.u8 b 1;
    Operator.write_stats b !stats;
    W.int b !now;
    List.iter (fun (_, s) -> Join_state.write_snapshot b s) states;
    Buffer.contents b
  in
  let load blob =
    let module R = Streams.Wire.R in
    let r = R.of_string blob in
    let v = R.u8 r in
    if v <> 1 then
      raise
        (Streams.Wire.Corrupt
           (Printf.sprintf "Window_join snapshot version %d, expected 1" v));
    let st = Operator.read_stats r in
    let n = R.int r in
    List.iter (fun (_, s) -> Join_state.read_snapshot s r) states;
    R.expect_end r;
    stats := st;
    now := n
  in
  {
    Operator.name;
    out_schema;
    input_names = names;
    push;
    push_batch;
    flush;
    data_state_size =
      (fun () ->
        List.fold_left (fun acc (_, s) -> acc + Join_state.size s) 0 states);
    punct_state_size = (fun () -> 0);
    index_state_size =
      (fun () ->
        List.fold_left
          (fun acc (_, s) -> acc + Join_state.index_entries s)
          0 states);
    state_bytes =
      (fun () ->
        List.fold_left
          (fun acc (_, s) ->
            acc + (Join_state.mem_stats s).Join_state.approx_bytes)
          0 states);
    stats = (fun () -> !stats);
    persistence = Operator.Snapshot { save; load };
  }
