(** Typed atomic values carried by stream tuples and punctuations.

    Values are the leaves of the whole system: tuples are arrays of values,
    punctuation patterns constrain attributes to values, and join predicates
    compare values across streams. Only flat scalar types are supported, which
    is all the paper's equi-join setting needs. *)

type t =
  | Int of int
  | Str of string
  | Float of float
  | Bool of bool
  | Null  (** absent / unknown; never equal to anything, including itself *)

type ty = TInt | TStr | TFloat | TBool

(** [type_of v] is the declared type of [v], or [None] for [Null]. *)
val type_of : t -> ty option

(** [equal a b] is SQL-style equality: [Null] compares false against
    everything (so a null join key never matches). *)
val equal : t -> t -> bool

(** [compare] is a total order usable as a container key; unlike {!equal} it
    treats [Null] as a smallest distinct element so that values can live in
    maps and sets.

    Because [compare Null Null = 0] while [equal Null Null = false], any
    container keyed by [compare] (or {!hash}) silently adopts Null = Null
    semantics. Join code must never let a Null reach a hash-bucket key: the
    engine's convention (SQL semantics) is that Null join keys are skipped
    at indexing and probing time ({!Join_state}), so both the index path and
    the {!Predicate.eval} path agree that a null key matches nothing. *)
val compare : t -> t -> int

(** [is_null v] — [v] is the absent/unknown marker. *)
val is_null : t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

(** [matches_ty v ty] holds when [v] can legally populate an attribute of
    type [ty]; [Null] matches every type. *)
val matches_ty : t -> ty -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
