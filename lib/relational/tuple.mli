(** Stream tuples: an array of values conforming to a schema. *)

type t

(** [make schema values] checks arity and value/type compatibility.
    @raise Invalid_argument on arity or type mismatch. *)
val make : Schema.t -> Value.t list -> t

(** [of_array] is {!make} without copying; the array must not be mutated
    afterwards. *)
val of_array : Schema.t -> Value.t array -> t

(** [unsafe_of_array schema values] skips the arity and type validation of
    {!of_array}. Contract: [Array.length values = Schema.arity schema] and
    every [values.(i)] satisfies [Value.matches_ty] for attribute [i], and
    the array is never mutated afterwards. Reserved for hot paths that
    assemble outputs from already-validated tuples under a schema whose
    conformance was checked once at plan time (see {!Mjoin}); everything
    else should use {!of_array}. A violated contract surfaces as wrong
    query answers, not an exception — treat this as part of the operator
    compiler, not a general constructor. *)
val unsafe_of_array : Schema.t -> Value.t array -> t

(** [blit t dst pos] copies [t]'s values into [dst] starting at [pos]
    (output assembly for concatenated result tuples). *)
val blit : t -> Value.t array -> int -> unit

val schema : t -> Schema.t
val arity : t -> int

(** [get t i] is the value at position [i]. *)
val get : t -> int -> Value.t

(** [get_named t name] is the value of attribute [name].
    @raise Not_found when the schema has no such attribute. *)
val get_named : t -> string -> Value.t

val values : t -> Value.t list

(** [project t idxs] is the sub-tuple of positions [idxs] (as raw values —
    used for join keys and distinct projections). *)
val project : t -> int list -> Value.t list

(** [concat schema a b] pairs two tuples under a pre-built joined
    [schema] (see {!Schema.concat}). *)
val concat : Schema.t -> t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
