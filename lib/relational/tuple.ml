type t = { schema : Schema.t; values : Value.t array }

let of_array schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Tuple: arity mismatch for %s: got %d, want %d"
         (Schema.stream_name schema)
         (Array.length values) (Schema.arity schema));
  Array.iteri
    (fun i v ->
      let a = Schema.attr_at schema i in
      if not (Value.matches_ty v a.Schema.ty) then
        invalid_arg
          (Printf.sprintf "Tuple: attribute %s of %s expects %s, got %s"
             a.Schema.name
             (Schema.stream_name schema)
             (Value.ty_to_string a.Schema.ty)
             (Value.to_string v)))
    values;
  { schema; values }

let make schema values = of_array schema (Array.of_list values)

(* The caller vouches for arity and per-attribute types (see .mli): result
   assembly on the join hot path concatenates already-validated tuples under
   a schema whose attribute list is the concatenation of theirs, so
   re-running [of_array]'s checks per result would only re-prove what plan
   compilation established once. *)
let unsafe_of_array schema values = { schema; values }

let blit t dst pos = Array.blit t.values 0 dst pos (Array.length t.values)
let schema t = t.schema
let arity t = Array.length t.values
let get t i = t.values.(i)
let get_named t name = t.values.(Schema.attr_index t.schema name)
let values t = Array.to_list t.values
let project t idxs = List.map (fun i -> t.values.(i)) idxs

let concat schema a b =
  of_array schema (Array.append a.values b.values)

let equal a b =
  Array.length a.values = Array.length b.values
  (* Physical equality of tuples, not SQL equality: nulls match nulls here. *)
  && Array.for_all2 (fun x y -> Value.compare x y = 0) a.values b.values

let compare a b =
  let c = Int.compare (Array.length a.values) (Array.length b.values) in
  if c <> 0 then c
  else
    let rec loop i =
      if i = Array.length a.values then 0
      else
        let c = Value.compare a.values.(i) b.values.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t.values

let pp ppf t =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:Fmt.comma Value.pp) t.values

let to_string t = Fmt.str "%a" pp t
