type t =
  | Int of int
  | Str of string
  | Float of float
  | Bool of bool
  | Null

type ty = TInt | TStr | TFloat | TBool

let type_of = function
  | Int _ -> Some TInt
  | Str _ -> Some TStr
  | Float _ -> Some TFloat
  | Bool _ -> Some TBool
  | Null -> None

let is_null = function Null -> true | _ -> false

let equal a b =
  match a, b with
  | Null, _ | _, Null -> false
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Int _ | Str _ | Float _ | Bool _), _ -> false

(* Rank-based total order so heterogeneous values can key maps/sets. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Float f -> Hashtbl.hash (2, f)
  | Bool b -> Hashtbl.hash (3, b)

let pp ppf = function
  | Int x -> Fmt.int ppf x
  | Str s -> Fmt.pf ppf "%S" s
  | Float f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let to_string v = Fmt.str "%a" pp v

let pp_ty ppf ty =
  Fmt.string ppf
    (match ty with
    | TInt -> "int"
    | TStr -> "str"
    | TFloat -> "float"
    | TBool -> "bool")

let ty_to_string ty = Fmt.str "%a" pp_ty ty

let matches_ty v ty =
  match type_of v with None -> true | Some ty' -> ty = ty'

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
