(** Choosing a safe execution plan (§5.2).

    Rather than enumerating every plan and filtering, safe plans are grown
    from strongly connected sub-graphs of the (generalized) punctuation
    graph — the paper's "building blocks" — with a System-R-style dynamic
    program over stream subsets. The DP combines subsets by binary merges
    and also considers the flat MJoin over each subset, which covers all
    binary trees, the single MJoin, and mixed shapes whose internal nodes
    are binary over MJoin leaves; by Theorem 4 it finds a plan whenever one
    exists (the full MJoin is always considered). *)

(** [enumerate_safe_plans ?schemes ?max_plans query] — every safe plan found
    by exhaustive enumeration, capped at [max_plans] (default 10_000). This
    is exponential; use for small queries, tests and benches. *)
val enumerate_safe_plans :
  ?schemes:Streams.Scheme.Set.t ->
  ?max_plans:int ->
  Query.Cjq.t ->
  Query.Plan.t list

(** [best_plan ?schemes params query] — the minimum-estimated-cost safe plan
    from the DP, or [None] when the query is unsafe. *)
val best_plan :
  ?schemes:Streams.Scheme.Set.t ->
  Cost_model.params ->
  Query.Cjq.t ->
  (Query.Plan.t * Cost_model.cost) option

(** [minimal_scheme_subset ?schemes query] — Plan Parameter I's option (b):
    a subset of the scheme set, minimal under inclusion, that still keeps
    the query safe (greedy removal; [None] when the query is unsafe even
    with everything). *)
val minimal_scheme_subset :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> Streams.Scheme.Set.t option

(** [all_minimal_scheme_subsets ?schemes query] — every inclusion-minimal
    safe subset (exponential in the scheme count; intended for small ℜ). *)
val all_minimal_scheme_subsets :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> Streams.Scheme.Set.t list

(** {2 Multi-query shared planning}

    Greedy folding of N registered queries' plans onto shared building
    blocks (sub-joins found by {!Query.Query_registry.shared_candidates},
    admitted by {!Checker.shareable} under the scheme-set intersection).
    Candidates are scored by saved work — (subscribers − 1) × block width —
    and committed best-first, at most one block per query; every query not
    riding a block falls back to its independent flat MJoin, which is safe
    exactly when the query is (Theorem 4). *)

type assignment =
  | Shared of { gid : string; rest : string list }
      (** the query subscribes to group [gid] and joins its output with its
          [rest] streams in a residual operator *)
  | Independent of Query.Plan.t

type shared_group = {
  gid : string;
  streams : string list;
  group_members : (string * string list) list;
      (** (qid, residual streams) per subscriber *)
  report : Checker.share_report;  (** why this block is admissible *)
}

type multi_plan = {
  groups : shared_group list;
  assignments : (string * assignment) list;  (** one per registered query *)
}

(** [plan_shared ?share registry] — the multi-query plan. [share:false]
    (default [true]) disables sharing entirely: every query gets its
    independent plan (the baseline the bench and the [--no-share] CLI flag
    compare against). *)
val plan_shared : ?share:bool -> Query.Query_registry.t -> multi_plan
