(** The safety checker: Theorems 1–5 packaged as decision procedures.

    This is the component the paper's query register runs before admitting a
    continuous join query (Figure 2): is the query safe under the declared
    punctuation scheme set, which execution plans are safe, which join
    states are purgeable and by which purge chains. *)

type method_ = Pg | Gpg_closure | Tpg
(** Which procedure decides query safety:
    - [Pg]: Theorem 2, plain punctuation graph strong connectivity — exact
      when every scheme has a single punctuatable attribute, only sufficient
      otherwise;
    - [Gpg_closure]: Theorem 4 via Definition 9's fixpoint — the ground
      truth, quadratic;
    - [Tpg]: Theorem 5's transformation — the polynomial algorithm of
      §4.3 (the default). *)

(** Per-stream purgeability (Theorem 3). *)
type stream_report = {
  stream : string;
  purgeable : bool;
  purge_plan : Chained_purge.plan option;
      (** the chained purge walk when purgeable *)
  unreached : string list;
      (** streams the GPG cannot reach from here (empty when purgeable) *)
}

type report = {
  safe : bool;
  decided_by : method_;
  pg : Punctuation_graph.t;
  gpg : Gpg.t;
  tpg : Tpg.t;
  streams : stream_report list;
}

(** [check ?method_ ?schemes query] runs the full analysis. [schemes]
    defaults to the query's declared scheme set, [method_] to [Tpg]. *)
val check :
  ?method_:method_ -> ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> report

(** [is_safe ?method_ ?schemes query] — Definition 5: does a safe execution
    plan exist? *)
val is_safe :
  ?method_:method_ -> ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> bool

(** [stream_purgeable ?schemes query name] — Theorem 3 for one stream of the
    whole-query MJoin. *)
val stream_purgeable :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> string -> bool

(** Verdict for an outer/anti variant of a binary query. The unmatched-side
    emission of {!Engine.Outer_join} is the dual of purge soundness: a
    preserved side's pending tuples are released exactly when partner
    punctuations cover their join values, so the release provably fires iff
    that side's state is purgeable (Theorem 3 on the preserved stream). *)
type outer_report = {
  kind : Query.Cjq.join_kind;
  preserved : string list;  (** sides whose unmatched tuples are emitted *)
  emission_ok : bool;
      (** every preserved side's release is punctuation-provable *)
  bounded : bool;  (** the inner-join state guarantee (Definition 5) *)
  safe : bool;  (** [emission_ok && bounded] *)
}

(** [check_outer ?schemes query kind] — verdict for one non-[Inner] variant.
    @raise Invalid_argument on [Inner] or a non-binary query. *)
val check_outer :
  ?schemes:Streams.Scheme.Set.t ->
  Query.Cjq.t ->
  Query.Cjq.join_kind ->
  outer_report

(** [outer_variants ?schemes query] — verdicts for all four non-[Inner]
    variants of a binary query (LEFT, RIGHT, FULL, ANTI in that order). *)
val outer_variants :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> outer_report list

(** [is_safe_kind ?schemes query] decides safety for the query's own join
    kind: {!is_safe} for [Inner], [(check_outer query kind).safe]
    otherwise. *)
val is_safe_kind : ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> bool

val pp_outer_report : Format.formatter -> outer_report -> unit

(** [operator_purgeable ~blocks preds schemes] — Corollary 2 at block level:
    the operator whose inputs are [blocks] is purgeable iff its generalized
    punctuation graph is strongly connected. *)
val operator_purgeable :
  blocks:Block.t list ->
  Relational.Predicate.t ->
  Streams.Scheme.Set.t ->
  bool

(** [plan_safe ?schemes query plan] — Definition 2: every operator of [plan]
    purgeable. *)
val plan_safe :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> Query.Plan.t -> bool

(** [unsafe_operators ?schemes query plan] — the operators of [plan] that
    are not purgeable (empty iff the plan is safe). *)
val unsafe_operators :
  ?schemes:Streams.Scheme.Set.t ->
  Query.Cjq.t ->
  Query.Plan.t ->
  Query.Plan.t list

(** {2 Multi-query shareability}

    A sub-join shared between several queries executes once, with one join
    state and one punctuation store — so it may only purge state on
    punctuations {e every} subscriber's input is guaranteed to carry. That
    is exactly safety under the intersection of the member queries' scheme
    sets; the residual per-query work is then checked under a mixed view
    (intersection on the shared streams, the query's own schemes
    elsewhere). This is the safety dimension the multi-query optimization
    literature (Dossinger & Michel, PAPERS.md) leaves open. *)

(** Verdict for one member query of a candidate shared block. *)
type member_report = {
  qid : string;
  folded_plan : Query.Plan.t;
      (** the member's plan folded onto the block: the block as one flat
          operator joined with the member's remaining streams *)
  folded_safe : bool;
      (** the folded plan is safe under [mixed_schemes] (and the block
          itself purgeable under the intersection) *)
  mixed_schemes : Streams.Scheme.Set.t;
}

type share_report = {
  streams : string list;  (** sorted streams of the candidate block *)
  intersection : Streams.Scheme.Set.t;
  sub_purgeable : bool;
      (** the block, as one flat MJoin, is purgeable under the
          intersection (Corollary 2) *)
  member_reports : member_report list;
  shareable_for : string list;
      (** qids admitted to the shared block — empty unless at least two
          members are admissible (sharing with one subscriber is just an
          independent plan) *)
}

(** [scheme_intersection queries ~streams] — the schemes declared by every
    query of [queries] on each stream of [streams] (compared with
    {!Streams.Scheme.equal}).
    @raise Invalid_argument on an empty query list. *)
val scheme_intersection :
  Query.Cjq.t list -> streams:string list -> Streams.Scheme.Set.t

(** [shareable ~members ~streams] — decide shareability of the sub-join on
    [streams] for the given [(qid, query)] members.
    @raise Invalid_argument with fewer than two members or a non-[Inner]
    member. *)
val shareable :
  members:(string * Query.Cjq.t) list -> streams:string list -> share_report

(** [exists_safe_plan_by_enumeration ?schemes query] decides safety the
    naive way — enumerate every plan, test each (the exponential baseline
    Theorems 2/4 avoid). Kept as a test oracle and benchmark baseline. *)
val exists_safe_plan_by_enumeration :
  ?schemes:Streams.Scheme.Set.t -> Query.Cjq.t -> bool

val pp_report : Format.formatter -> report -> unit
