module Plan = Query.Plan
module Cjq = Query.Cjq
module Scheme = Streams.Scheme

let schemes_of ?schemes query =
  match schemes with Some s -> s | None -> Cjq.scheme_set query

let enumerate_safe_plans ?schemes ?(max_plans = 10_000) query =
  let schemes = schemes_of ?schemes query in
  let count = ref 0 in
  List.filter
    (fun plan ->
      !count < max_plans
      && Checker.plan_safe ~schemes query plan
      &&
      (incr count;
       true))
    (Query.Plan_enum.all_plans
       ~connected_only:query
       (Cjq.stream_names query))

(* DP over stream subsets (subsets as sorted name lists). For each subset,
   the cheapest safe plan covering it; combination by binary merge of two
   disjoint sub-plans, or the flat MJoin over the subset. *)
let best_plan ?schemes params query =
  let schemes = schemes_of ?schemes query in
  let names = Cjq.stream_names query in
  let preds = Cjq.predicates query in
  (* Cost of a sub-plan: the cost model applied to the query restricted to
     the sub-plan's streams. *)
  let sub_cost plan =
    let leaves = Plan.leaves plan in
    match leaves with
    | [ _ ] -> Some 0.0
    | _ ->
        (* Evaluate the plan's operators directly with the cost model by
           rebuilding a query restricted to the subset. Disconnected
           subsets are not valid sub-queries and are skipped. *)
        (match Cjq.restrict query leaves with
        | sub -> (
            match Cost_model.plan_cost params ~schemes sub plan with
            | Some c -> Some c.total
            | None -> None)
        | exception Cjq.Invalid _ -> None)
  in
  let module SM = Map.Make (struct
    type t = string list

    let compare = List.compare String.compare
  end) in
  let canon subset = List.sort String.compare subset in
  (* Enumerate all subsets of names with >= 1 element. *)
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  let all =
    subsets names
    |> List.filter (fun s -> s <> [])
    |> List.map canon
    |> List.sort (fun a b ->
           compare (List.length a, a) (List.length b, b))
  in
  let operator_safe blocks =
    Checker.operator_purgeable ~blocks preds schemes
  in
  let table = ref SM.empty in
  let lookup s = SM.find_opt (canon s) !table in
  List.iter
    (fun subset ->
      let best = ref None in
      let consider plan =
        match sub_cost plan with
        | None -> ()
        | Some c -> (
            match !best with
            | Some (_, c') when c' <= c -> ()
            | _ -> best := Some (plan, c))
      in
      (match subset with
      | [ s ] -> best := Some (Plan.Leaf s, 0.0)
      | _ ->
          (* flat MJoin over the subset *)
          let blocks = List.map Block.singleton subset in
          if operator_safe blocks then consider (Plan.mjoin subset);
          (* binary merges: split into (left, right); consider the split
             once per unordered pair. *)
          let rec splits left right = function
            | [] ->
                if left <> [] && right <> [] then begin
                  match lookup left, lookup right with
                  | Some (pl, _), Some (pr, _) ->
                      let bl = Block.make (Plan.leaves pl)
                      and br = Block.make (Plan.leaves pr) in
                      if operator_safe [ bl; br ] then
                        consider (Plan.join [ pl; pr ])
                  | _ -> ()
                end
            | x :: rest ->
                splits (x :: left) right rest;
                splits left (x :: right) rest
          in
          (match subset with
          | [] -> ()
          | first :: rest ->
              (* pin [first] to the left side to halve the split count *)
              splits [ first ] [] rest));
      match !best with
      | Some entry -> table := SM.add subset entry !table
      | None -> ())
    all;
  match lookup names with
  | None -> None
  | Some (plan, _) -> (
      match Cost_model.plan_cost params ~schemes query plan with
      | Some cost -> Some (plan, cost)
      | None -> None)

let minimal_scheme_subset ?schemes query =
  let schemes = schemes_of ?schemes query in
  if not (Checker.is_safe ~schemes query) then None
  else
    let rec shrink kept =
      let try_drop =
        List.find_opt
          (fun sch ->
            let without =
              Scheme.Set.of_list
                (List.filter (fun s -> s != sch) (Scheme.Set.schemes kept))
            in
            Checker.is_safe ~schemes:without query)
          (Scheme.Set.schemes kept)
      in
      match try_drop with
      | None -> kept
      | Some sch ->
          shrink
            (Scheme.Set.of_list
               (List.filter (fun s -> s != sch) (Scheme.Set.schemes kept)))
    in
    Some (shrink schemes)

let all_minimal_scheme_subsets ?schemes query =
  let schemes = schemes_of ?schemes query in
  let all = Scheme.Set.schemes schemes in
  let rec power = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = power rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  let safe_subsets =
    List.filter
      (fun sub -> Checker.is_safe ~schemes:(Scheme.Set.of_list sub) query)
      (power all)
  in
  let proper_subset a b =
    List.length a < List.length b && List.for_all (fun x -> List.memq x b) a
  in
  List.filter
    (fun sub ->
      not (List.exists (fun other -> proper_subset other sub) safe_subsets))
    safe_subsets
  |> List.map Scheme.Set.of_list

(* --- multi-query shared planning --------------------------------------- *)

module Query_registry = Query.Query_registry

type assignment =
  | Shared of { gid : string; rest : string list }
  | Independent of Plan.t

type shared_group = {
  gid : string;
  streams : string list;
  group_members : (string * string list) list;
  report : Checker.share_report;
}

type multi_plan = {
  groups : shared_group list;
  assignments : (string * assignment) list;
}

(* Greedy folding of the per-query plans onto shared building blocks:
   score candidates by saved operator inputs — (subscribers - 1) blocks of
   |streams| inputs each — take the best first, one block per query.
   Unsafe members fall off the block (not the run): any query left without
   a block keeps its independent flat MJoin, which is safe exactly when
   the query itself is (Theorem 4). *)
let plan_shared ?(share = true) registry =
  let entries = Query_registry.entries registry in
  let independent q = Independent (Plan.mjoin (Cjq.stream_names q)) in
  if not share then
    {
      groups = [];
      assignments =
        List.map
          (fun e ->
            (e.Query_registry.qid, independent e.Query_registry.query))
          entries;
    }
  else begin
    let assigned : (string, string * string list) Hashtbl.t =
      Hashtbl.create 8
    in
    (* qid -> (gid, shared streams) *)
    let scored =
      Query_registry.shared_candidates registry
      |> List.filter (fun c -> c.Query_registry.fusable)
      |> List.filter_map (fun c ->
             let members =
               List.map
                 (fun (qid, _) -> (qid, Query_registry.find registry qid))
                 c.Query_registry.members
             in
             let report =
               Checker.shareable ~members ~streams:c.Query_registry.streams
             in
             match report.Checker.shareable_for with
             | [] | [ _ ] -> None
             | admitted ->
                 let score =
                   (List.length admitted - 1)
                   * List.length c.Query_registry.streams
                 in
                 Some (score, c.Query_registry.streams, admitted, report))
      |> List.stable_sort (fun (s1, _, _, _) (s2, _, _, _) -> compare s2 s1)
    in
    let groups = ref [] in
    let next_gid = ref 0 in
    List.iter
      (fun (_, streams, admitted, report) ->
        let free = List.filter (fun q -> not (Hashtbl.mem assigned q)) admitted in
        if List.length free >= 2 then begin
          incr next_gid;
          let gid = Printf.sprintf "G%d" !next_gid in
          let group_members =
            List.map
              (fun qid ->
                let q = Query_registry.find registry qid in
                let rest =
                  List.filter
                    (fun s -> not (List.mem s streams))
                    (Cjq.stream_names q)
                in
                Hashtbl.replace assigned qid (gid, streams);
                (qid, rest))
              free
          in
          groups := { gid; streams; group_members; report } :: !groups
        end)
      scored;
    let assignments =
      List.map
        (fun e ->
          let qid = e.Query_registry.qid in
          match Hashtbl.find_opt assigned qid with
          | Some (gid, streams) ->
              let rest =
                List.filter
                  (fun s -> not (List.mem s streams))
                  (Cjq.stream_names e.Query_registry.query)
              in
              (qid, Shared { gid; rest })
          | None -> (qid, independent e.Query_registry.query))
        entries
    in
    { groups = List.rev !groups; assignments }
  end
