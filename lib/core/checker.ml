module Scheme = Streams.Scheme
module Cjq = Query.Cjq
module Plan = Query.Plan

type method_ = Pg | Gpg_closure | Tpg

type stream_report = {
  stream : string;
  purgeable : bool;
  purge_plan : Chained_purge.plan option;
  unreached : string list;
}

type report = {
  safe : bool;
  decided_by : method_;
  pg : Punctuation_graph.t;
  gpg : Gpg.t;
  tpg : Tpg.t;
  streams : stream_report list;
}

let schemes_of ?schemes query =
  match schemes with Some s -> s | None -> Cjq.scheme_set query

let is_safe ?(method_ = Tpg) ?schemes query =
  let schemes = schemes_of ?schemes query in
  match method_ with
  | Pg ->
      Punctuation_graph.is_strongly_connected
        (Punctuation_graph.of_query ~schemes query)
  | Gpg_closure -> Gpg.is_strongly_connected (Gpg.of_query ~schemes query)
  | Tpg -> Tpg.is_safe (Tpg.of_query ~schemes query)

let stream_purgeable ?schemes query name =
  let schemes = schemes_of ?schemes query in
  Gpg.reaches_all (Gpg.of_query ~schemes query) (Block.singleton name)

let check ?(method_ = Tpg) ?schemes query =
  let schemes = schemes_of ?schemes query in
  let names = Cjq.stream_names query in
  let preds = Cjq.predicates query in
  let pg = Punctuation_graph.of_query ~schemes query in
  let gpg = Gpg.of_query ~schemes query in
  let tpg = Tpg.of_query ~schemes query in
  let streams =
    List.map
      (fun stream ->
        let reached = Gpg.reachable gpg (Block.singleton stream) in
        let unreached =
          List.filter
            (fun s -> not (List.mem (Block.singleton s) reached))
            names
        in
        let purgeable = unreached = [] in
        let purge_plan =
          if purgeable then Chained_purge.derive names preds schemes ~root:stream
          else None
        in
        { stream; purgeable; purge_plan; unreached })
      names
  in
  let safe = is_safe ~method_ ~schemes query in
  { safe; decided_by = method_; pg; gpg; tpg; streams }

(* --- outer/anti variants ----------------------------------------------- *)

type outer_report = {
  kind : Cjq.join_kind;
  preserved : string list;
  emission_ok : bool;
  bounded : bool;
  safe : bool;
}

let preserved_streams query kind =
  match (Cjq.stream_names query, kind) with
  | _, Cjq.Inner -> []
  | [ left; _ ], (Cjq.Left_outer | Cjq.Anti) -> [ left ]
  | [ _; right ], Cjq.Right_outer -> [ right ]
  | [ left; right ], Cjq.Full_outer -> [ left; right ]
  | _ ->
      invalid_arg "Checker.preserved_streams: outer kinds are binary queries"

let check_outer ?schemes query kind =
  if kind = Cjq.Inner then
    invalid_arg "Checker.check_outer: use check for inner joins";
  if Cjq.n_streams query <> 2 then
    invalid_arg "Checker.check_outer: outer kinds are binary queries";
  let schemes = schemes_of ?schemes query in
  let preserved = preserved_streams query kind in
  (* Emission: a preserved side's unmatched tuples are released exactly
     when partner punctuations cover their join values — the same GPG
     reachability (Theorem 3) that proves the side's state purgeable
     proves the release eventually fires. Boundedness is the plain
     inner-join guarantee (every state purgeable). *)
  let emission_ok =
    List.for_all (fun s -> stream_purgeable ~schemes query s) preserved
  in
  let bounded = is_safe ~schemes query in
  { kind; preserved; emission_ok; bounded; safe = emission_ok && bounded }

let outer_variants ?schemes query =
  List.map
    (fun kind -> check_outer ?schemes query kind)
    [ Cjq.Left_outer; Cjq.Right_outer; Cjq.Full_outer; Cjq.Anti ]

let is_safe_kind ?schemes query =
  match Cjq.kind query with
  | Cjq.Inner -> is_safe ?schemes query
  | kind -> (check_outer ?schemes query kind).safe

let pp_outer_report ppf r =
  Fmt.pf ppf "%-6s preserved={%a} emission=%s bounded=%s -> %s"
    (Cjq.kind_to_string r.kind)
    Fmt.(list ~sep:(any ",") string)
    r.preserved
    (if r.emission_ok then "provable" else "unprovable")
    (if r.bounded then "yes" else "no")
    (if r.safe then "SAFE" else "UNSAFE")

let operator_purgeable ~blocks preds schemes =
  Gpg.is_strongly_connected (Gpg.of_blocks blocks preds schemes)

let unsafe_operators ?schemes query plan =
  let schemes = schemes_of ?schemes query in
  let preds = Cjq.predicates query in
  Plan.validate plan query;
  List.filter
    (fun op ->
      let blocks = List.map Block.make (Plan.inputs_of_operator op) in
      not (operator_purgeable ~blocks preds schemes))
    (Plan.operators plan)

let plan_safe ?schemes query plan = unsafe_operators ?schemes query plan = []

let exists_safe_plan_by_enumeration ?schemes query =
  let schemes = schemes_of ?schemes query in
  List.exists
    (fun plan -> plan_safe ~schemes query plan)
    (Query.Plan_enum.all_plans (Cjq.stream_names query))

let pp_method ppf = function
  | Pg -> Fmt.string ppf "punctuation graph (Theorem 2)"
  | Gpg_closure -> Fmt.string ppf "GPG closure (Theorem 4)"
  | Tpg -> Fmt.string ppf "TPG transformation (Theorem 5)"

let pp_report ppf (r : report) =
  let pp_stream ppf s =
    if s.purgeable then
      Fmt.pf ppf "@[<v2>%s: purgeable@,%a@]" s.stream
        (Fmt.option Chained_purge.pp_plan)
        s.purge_plan
    else
      Fmt.pf ppf "%s: NOT purgeable (cannot reach %a)" s.stream
        Fmt.(list ~sep:comma string)
        s.unreached
  in
  Fmt.pf ppf "@[<v>verdict: %s (decided by %a)@,%a@]"
    (if r.safe then "SAFE" else "UNSAFE")
    pp_method r.decided_by
    (Fmt.list ~sep:Fmt.cut pp_stream)
    r.streams
