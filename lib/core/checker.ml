module Scheme = Streams.Scheme
module Cjq = Query.Cjq
module Plan = Query.Plan

type method_ = Pg | Gpg_closure | Tpg

type stream_report = {
  stream : string;
  purgeable : bool;
  purge_plan : Chained_purge.plan option;
  unreached : string list;
}

type report = {
  safe : bool;
  decided_by : method_;
  pg : Punctuation_graph.t;
  gpg : Gpg.t;
  tpg : Tpg.t;
  streams : stream_report list;
}

let schemes_of ?schemes query =
  match schemes with Some s -> s | None -> Cjq.scheme_set query

let is_safe ?(method_ = Tpg) ?schemes query =
  let schemes = schemes_of ?schemes query in
  match method_ with
  | Pg ->
      Punctuation_graph.is_strongly_connected
        (Punctuation_graph.of_query ~schemes query)
  | Gpg_closure -> Gpg.is_strongly_connected (Gpg.of_query ~schemes query)
  | Tpg -> Tpg.is_safe (Tpg.of_query ~schemes query)

let stream_purgeable ?schemes query name =
  let schemes = schemes_of ?schemes query in
  Gpg.reaches_all (Gpg.of_query ~schemes query) (Block.singleton name)

let check ?(method_ = Tpg) ?schemes query =
  let schemes = schemes_of ?schemes query in
  let names = Cjq.stream_names query in
  let preds = Cjq.predicates query in
  let pg = Punctuation_graph.of_query ~schemes query in
  let gpg = Gpg.of_query ~schemes query in
  let tpg = Tpg.of_query ~schemes query in
  let streams =
    List.map
      (fun stream ->
        let reached = Gpg.reachable gpg (Block.singleton stream) in
        let unreached =
          List.filter
            (fun s -> not (List.mem (Block.singleton s) reached))
            names
        in
        let purgeable = unreached = [] in
        let purge_plan =
          if purgeable then Chained_purge.derive names preds schemes ~root:stream
          else None
        in
        { stream; purgeable; purge_plan; unreached })
      names
  in
  let safe = is_safe ~method_ ~schemes query in
  { safe; decided_by = method_; pg; gpg; tpg; streams }

(* --- outer/anti variants ----------------------------------------------- *)

type outer_report = {
  kind : Cjq.join_kind;
  preserved : string list;
  emission_ok : bool;
  bounded : bool;
  safe : bool;
}

let preserved_streams query kind =
  match (Cjq.stream_names query, kind) with
  | _, Cjq.Inner -> []
  | [ left; _ ], (Cjq.Left_outer | Cjq.Anti) -> [ left ]
  | [ _; right ], Cjq.Right_outer -> [ right ]
  | [ left; right ], Cjq.Full_outer -> [ left; right ]
  | _ ->
      invalid_arg "Checker.preserved_streams: outer kinds are binary queries"

let check_outer ?schemes query kind =
  if kind = Cjq.Inner then
    invalid_arg "Checker.check_outer: use check for inner joins";
  if Cjq.n_streams query <> 2 then
    invalid_arg "Checker.check_outer: outer kinds are binary queries";
  let schemes = schemes_of ?schemes query in
  let preserved = preserved_streams query kind in
  (* Emission: a preserved side's unmatched tuples are released exactly
     when partner punctuations cover their join values — the same GPG
     reachability (Theorem 3) that proves the side's state purgeable
     proves the release eventually fires. Boundedness is the plain
     inner-join guarantee (every state purgeable). *)
  let emission_ok =
    List.for_all (fun s -> stream_purgeable ~schemes query s) preserved
  in
  let bounded = is_safe ~schemes query in
  { kind; preserved; emission_ok; bounded; safe = emission_ok && bounded }

let outer_variants ?schemes query =
  List.map
    (fun kind -> check_outer ?schemes query kind)
    [ Cjq.Left_outer; Cjq.Right_outer; Cjq.Full_outer; Cjq.Anti ]

let is_safe_kind ?schemes query =
  match Cjq.kind query with
  | Cjq.Inner -> is_safe ?schemes query
  | kind -> (check_outer ?schemes query kind).safe

let pp_outer_report ppf r =
  Fmt.pf ppf "%-6s preserved={%a} emission=%s bounded=%s -> %s"
    (Cjq.kind_to_string r.kind)
    Fmt.(list ~sep:(any ",") string)
    r.preserved
    (if r.emission_ok then "provable" else "unprovable")
    (if r.bounded then "yes" else "no")
    (if r.safe then "SAFE" else "UNSAFE")

let operator_purgeable ~blocks preds schemes =
  Gpg.is_strongly_connected (Gpg.of_blocks blocks preds schemes)

let unsafe_operators ?schemes query plan =
  let schemes = schemes_of ?schemes query in
  let preds = Cjq.predicates query in
  Plan.validate plan query;
  List.filter
    (fun op ->
      let blocks = List.map Block.make (Plan.inputs_of_operator op) in
      not (operator_purgeable ~blocks preds schemes))
    (Plan.operators plan)

let plan_safe ?schemes query plan = unsafe_operators ?schemes query plan = []

let exists_safe_plan_by_enumeration ?schemes query =
  let schemes = schemes_of ?schemes query in
  List.exists
    (fun plan -> plan_safe ~schemes query plan)
    (Query.Plan_enum.all_plans (Cjq.stream_names query))

(* --- multi-query shareability ----------------------------------------- *)

type member_report = {
  qid : string;
  folded_plan : Plan.t;
  folded_safe : bool;
  mixed_schemes : Scheme.Set.t;
}

type share_report = {
  streams : string list;
  intersection : Scheme.Set.t;
  sub_purgeable : bool;
  member_reports : member_report list;
  shareable_for : string list;
}

let scheme_intersection queries ~streams =
  match queries with
  | [] -> invalid_arg "Checker.scheme_intersection: no queries"
  | first :: rest ->
      let declared q s =
        Streams.Stream_def.schemes (Cjq.def q s)
      in
      List.concat_map
        (fun s ->
          List.filter
            (fun sch ->
              List.for_all
                (fun q -> List.exists (Scheme.equal sch) (declared q s))
                rest)
            (declared first s))
        streams
      |> Scheme.Set.of_list

(* A query's plan folded onto the shared block: the block as one flat
   MJoin, joined with the query's remaining streams in a second flat
   operator. If the query is fully covered the block alone is the plan. *)
let folded_plan query ~streams =
  let rest =
    List.filter (fun s -> not (List.mem s streams)) (Cjq.stream_names query)
  in
  match rest with
  | [] -> Plan.mjoin streams
  | _ -> Plan.join (Plan.mjoin streams :: List.map (fun s -> Plan.Leaf s) rest)

let shareable ~members ~streams =
  (match members with
  | [] | [ _ ] -> invalid_arg "Checker.shareable: need at least two members"
  | _ -> ());
  List.iter
    (fun (_, q) ->
      if Cjq.kind q <> Cjq.Inner then
        invalid_arg "Checker.shareable: only Inner queries can share")
    members;
  let streams = List.sort_uniq String.compare streams in
  let intersection =
    scheme_intersection (List.map snd members) ~streams
  in
  (* The shared operator runs once for everyone, so it may only purge on
     punctuations every subscriber is guaranteed: Corollary 2 under the
     scheme-set intersection. *)
  let sub_purgeable =
    let _, q0 = List.hd members in
    let sub = Cjq.restrict q0 streams in
    operator_purgeable
      ~blocks:(List.map Block.singleton streams)
      (Cjq.predicates sub) intersection
  in
  let member_reports =
    List.map
      (fun (qid, q) ->
        (* Mixed scheme view of this member: the shared streams contribute
           only intersection schemes (the shared state purges under those
           alone), the member's private streams keep their own. *)
        let mixed =
          List.fold_left Scheme.Set.add
            (Scheme.Set.of_list
               (List.concat_map
                  (fun s ->
                    if List.mem s streams then []
                    else Streams.Stream_def.schemes (Cjq.def q s))
                  (Cjq.stream_names q)))
            (Scheme.Set.schemes intersection)
        in
        let folded_plan = folded_plan q ~streams in
        let folded_safe =
          sub_purgeable && plan_safe ~schemes:mixed q folded_plan
        in
        { qid; folded_plan; folded_safe; mixed_schemes = mixed })
      members
  in
  let shareable_for =
    List.filter_map
      (fun m -> if m.folded_safe then Some m.qid else None)
      member_reports
  in
  (* Sharing pays only when at least two subscribers can ride the block. *)
  let shareable_for = if List.length shareable_for >= 2 then shareable_for else [] in
  { streams; intersection; sub_purgeable; member_reports; shareable_for }

let pp_method ppf = function
  | Pg -> Fmt.string ppf "punctuation graph (Theorem 2)"
  | Gpg_closure -> Fmt.string ppf "GPG closure (Theorem 4)"
  | Tpg -> Fmt.string ppf "TPG transformation (Theorem 5)"

let pp_report ppf (r : report) =
  let pp_stream ppf s =
    if s.purgeable then
      Fmt.pf ppf "@[<v2>%s: purgeable@,%a@]" s.stream
        (Fmt.option Chained_purge.pp_plan)
        s.purge_plan
    else
      Fmt.pf ppf "%s: NOT purgeable (cannot reach %a)" s.stream
        Fmt.(list ~sep:comma string)
        s.unreached
  in
  Fmt.pf ppf "@[<v>verdict: %s (decided by %a)@,%a@]"
    (if r.safe then "SAFE" else "UNSAFE")
    pp_method r.decided_by
    (Fmt.list ~sep:Fmt.cut pp_stream)
    r.streams
