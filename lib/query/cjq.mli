(** Continuous join queries — the paper's [CJQ(ℑ, ℘)] (§2.2): a set of data
    streams plus conjunctive equi-join predicates between pairs of them. *)

type t

(** Join semantics of the query. [Inner] is the paper's CJQ; the outer and
    anti variants preserve unmatched tuples of one or both sides, emitted
    only once a partner punctuation proves matchlessness (see
    {!Engine.Outer_join}). Non-[Inner] kinds are binary: the first declared
    stream is the left side, the second the right. *)
type join_kind = Inner | Left_outer | Right_outer | Full_outer | Anti

val kind_to_string : join_kind -> string

(** [kind_of_string s] parses ["inner" | "left" | "right" | "full" |
    "anti"]. *)
val kind_of_string : string -> join_kind option

exception Invalid of string

(** [make ?kind defs preds] validates and builds a query:
    - at least two streams, all distinct (exactly two when [kind] is not
      [Inner]);
    - every atom references declared streams and attributes;
    - joined attributes have equal types;
    - the join graph is connected (no cross products).
    [kind] defaults to [Inner].
    @raise Invalid otherwise, with a human-readable reason. *)
val make :
  ?kind:join_kind -> Streams.Stream_def.t list -> Relational.Predicate.t -> t

(** The query's join semantics. *)
val kind : t -> join_kind

val stream_defs : t -> Streams.Stream_def.t list
val stream_names : t -> string list
val n_streams : t -> int
val predicates : t -> Relational.Predicate.t
val def : t -> string -> Streams.Stream_def.t
val schema_of : t -> string -> Relational.Schema.t

(** [scheme_set t] is the scheme set ℜ declared by the query's streams. *)
val scheme_set : t -> Streams.Scheme.Set.t

val join_graph : t -> Join_graph.t

(** [restrict t names] is the sub-query induced on [names] (atoms within the
    subset kept). Used to treat an operator of a plan as its own query.
    @raise Invalid when fewer than two names or the induced graph is
    disconnected. *)
val restrict : t -> string list -> t

val pp : Format.formatter -> t -> unit
