open Relational
module Stream_def = Streams.Stream_def
module Scheme = Streams.Scheme

type join_kind = Inner | Left_outer | Right_outer | Full_outer | Anti

let kind_to_string = function
  | Inner -> "inner"
  | Left_outer -> "left"
  | Right_outer -> "right"
  | Full_outer -> "full"
  | Anti -> "anti"

let kind_of_string = function
  | "inner" -> Some Inner
  | "left" -> Some Left_outer
  | "right" -> Some Right_outer
  | "full" -> Some Full_outer
  | "anti" -> Some Anti
  | _ -> None

type t = {
  defs : Stream_def.t list;
  preds : Predicate.t;
  join_graph : Join_graph.t;
  kind : join_kind;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let make ?(kind = Inner) defs preds =
  let names = List.map Stream_def.name defs in
  if List.length defs < 2 then
    invalid "a continuous join query needs at least two streams";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid "duplicate stream in query";
  let schema_of name =
    match List.find_opt (fun d -> Stream_def.name d = name) defs with
    | Some d -> Stream_def.schema d
    | None -> invalid "predicate references undeclared stream %S" name
  in
  List.iter
    (fun a ->
      let s1, s2 = Predicate.streams_of a in
      let check_attr s =
        let schema = schema_of s in
        let attr = Predicate.attr_on a s in
        if not (Schema.mem schema attr) then
          invalid "stream %s has no attribute %s (in %a)" s attr
            Predicate.pp_atom a;
        (Schema.attr_at schema (Schema.attr_index schema attr)).Schema.ty
      in
      let t1 = check_attr s1 and t2 = check_attr s2 in
      if t1 <> t2 then
        invalid "type mismatch in %a: %s vs %s" Predicate.pp_atom a
          (Value.ty_to_string t1) (Value.ty_to_string t2))
    preds;
  let join_graph = Join_graph.make names preds in
  if not (Join_graph.is_connected join_graph) then
    invalid "join graph is not connected (cross product)";
  (* Outer/anti semantics give the two sides distinct roles (preserved vs
     probed), so they are defined for binary queries only; the first
     declared stream is the left side. *)
  if kind <> Inner && List.length defs <> 2 then
    invalid "%s join semantics requires exactly two streams"
      (kind_to_string kind);
  { defs; preds; join_graph; kind }

let kind t = t.kind
let stream_defs t = t.defs
let stream_names t = List.map Stream_def.name t.defs
let n_streams t = List.length t.defs
let predicates t = t.preds

let def t name =
  match List.find_opt (fun d -> Stream_def.name d = name) t.defs with
  | Some d -> d
  | None -> invalid "query has no stream %S" name

let schema_of t name = Stream_def.schema (def t name)
let scheme_set t = Stream_def.scheme_set t.defs
let join_graph t = t.join_graph

let restrict t names =
  let defs = List.filter (fun d -> List.mem (Stream_def.name d) names) t.defs in
  let keep a =
    let s1, s2 = Predicate.streams_of a in
    List.mem s1 names && List.mem s2 names
  in
  make defs (List.filter keep t.preds)

let pp ppf t =
  Fmt.pf ppf "@[<v>CJQ%s over {%a}@,where %a@]"
    (match t.kind with
    | Inner -> ""
    | k -> Printf.sprintf " [%s]" (kind_to_string k))
    Fmt.(list ~sep:comma string)
    (stream_names t) Predicate.pp t.preds
