(** A small text format for declaring queries and punctuation schemes, used
    by the command-line tools and convenient in tests:

    {v
    # online auction (Example 1)
    stream item(sellerid:int, itemid:int, name:str, initialprice:float)
    stream bid(bidderid:int, itemid:int, increase:float)
    scheme item(_, +, _, _)
    scheme bid(_, +, _)
    join item.itemid = bid.itemid
    semantics anti
    v}

    One statement per line; [#] starts a comment. Scheme marks are [+]
    (punctuatable) and [_], aligned positionally with the stream's
    attributes. An optional [semantics inner|left|right|full|anti]
    statement selects the join family (default [inner]); outer/anti
    queries must declare exactly two streams, the first being the left
    side. *)

exception Parse_error of { line : int; message : string }

(** [parse text] builds the query described by [text].
    @raise Parse_error on syntax errors (with 1-based line number);
    @raise Cjq.Invalid when the parsed query is semantically invalid. *)
val parse : string -> Cjq.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> Cjq.t

(** [parse_defs text] accepts only [stream]/[scheme] statements and returns
    the declarations — for callers (e.g. the SQL front end) that bring their
    own predicates. @raise Parse_error on any [join] line. *)
val parse_defs : string -> Streams.Stream_def.t list

val parse_defs_file : string -> Streams.Stream_def.t list

(** [to_text query] renders a query back into the format accepted by
    {!parse} (round-trips modulo whitespace). *)
val to_text : Cjq.t -> string
