(** A registry of named continuous join queries and the canonicalizer that
    finds sub-joins shared between them.

    Multi-query execution starts here: the registry holds N parsed CJQs
    under caller-chosen identifiers, enumerates each query's connected
    sub-joins, and groups structurally equivalent ones across queries. Two
    sub-joins are equivalent when they read the same stream set and their
    predicate atoms coincide {e modulo attribute renaming}: every attribute
    is replaced by its (stream, position) coordinates, so queries that
    alias the same physical columns differently still canonicalize to the
    same key (following the sub-plan sharing of "Optimizing Multiple
    Multi-Way Stream Joins", Dossinger & Michel).

    Whether an equivalent group may actually execute as one shared operator
    is a separate, {e safety} question — {!Core.Checker.shareable} decides
    it under the intersection of the member queries' scheme sets. *)

type entry = { qid : string; query : Cjq.t }

type t

(** [create entries] — validates that qids are distinct and non-empty.
    @raise Invalid_argument on a duplicate or empty qid. *)
val create : entry list -> t

val entries : t -> entry list
val find : t -> string -> Cjq.t
val qids : t -> string list

(** A candidate shared sub-join: one canonical equivalence class with at
    least two member queries. *)
type candidate = {
  streams : string list;  (** sorted stream names of the sub-join *)
  members : (string * Cjq.t) list;
      (** (qid, sub-query restricted to [streams]) per member, in registry
          order; at least two *)
  fusable : bool;
      (** the members agree {e literally} — equal stream schemas and equal
          predicate atoms, not just equal modulo renaming — so one physical
          operator can serve them all without per-subscriber column
          remapping. The executor only fuses fusable candidates; a
          non-fusable equivalence is reported for diagnostics. *)
}

(** [canonical_key query names] — the renaming-invariant signature of the
    sub-join of [query] on [names]: sorted stream names plus atoms and
    attribute types in (stream index, attribute position) coordinates.
    Returns [None] when the induced sub-join is disconnected or smaller
    than two streams. *)
val canonical_key : Cjq.t -> string list -> string option

(** [subjoins query] — every connected stream subset of [query] of size ≥ 2
    (the full stream set included), sorted by size descending then
    lexicographically. Exponential in the number of streams, like the
    planner's DP — queries are small. *)
val subjoins : Cjq.t -> string list list

(** [shared_candidates t] — all equivalence classes with ≥ 2 member
    queries, largest stream sets first. Only [Inner]-kind queries
    participate: outer and anti kinds give their operators query-global
    emission semantics that cannot be shared. A query contributes each
    stream subset at most once. *)
val shared_candidates : t -> candidate list
