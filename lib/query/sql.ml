module Stream_def = Streams.Stream_def

exception Sql_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Sql_error m)) fmt

type query = {
  cjq : Cjq.t;
  projection : string list option;
}

(* Tokenizer: identifiers (possibly dotted), '*', ',', '='. *)
let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun i c ->
      ignore i;
      match c with
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | ',' | '=' | '*' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' ->
          Buffer.add_char buf c
      | other -> fail "unexpected character %C" other)
    text;
  ignore n;
  flush ();
  List.rev !tokens

let is_keyword k token = String.lowercase_ascii token = k

(* SELECT <projection> FROM <streams> [WHERE <atoms>] *)
let parse ~defs text =
  let tokens = tokenize text in
  let expect_keyword k = function
    | token :: rest when is_keyword k token -> rest
    | token :: _ -> fail "expected %s, got %S" (String.uppercase_ascii k) token
    | [] -> fail "expected %s at end of input" (String.uppercase_ascii k)
  in
  let dotted token =
    match String.split_on_char '.' token with
    | [ stream; attr ] when stream <> "" && attr <> "" -> (stream, attr)
    | _ -> fail "expected stream.attr, got %S" token
  in
  (* projection *)
  let rec parse_projection acc = function
    | "*" :: rest when acc = [] -> (None, expect_keyword "from" rest)
    | token :: rest when not (is_keyword "from" token) -> (
        let _ = dotted token in
        match rest with
        | "," :: more -> parse_projection (token :: acc) more
        | _ -> (Some (List.rev (token :: acc)), expect_keyword "from" rest))
    | rest ->
        if acc = [] then fail "empty SELECT list"
        else (Some (List.rev acc), expect_keyword "from" rest)
  in
  let rec parse_streams acc = function
    | [] ->
        if acc = [] then fail "empty FROM list" else (List.rev acc, [])
    | token :: rest when is_keyword "where" token ->
        if acc = [] then fail "empty FROM list" else (List.rev acc, rest)
    | "," :: rest -> parse_streams acc rest
    | token :: rest -> parse_streams (token :: acc) rest
  in
  (* [FROM a <kind> JOIN b ON atoms] — explicit binary join clauses; the
     comma form above stays the multiway-inner surface. *)
  let parse_join_clause left tokens =
    let kind, rest =
      match tokens with
      | t :: rest when is_keyword "join" t -> (Cjq.Inner, rest)
      | t :: rest when is_keyword "inner" t ->
          (Cjq.Inner, expect_keyword "join" rest)
      | t :: rest when is_keyword "anti" t ->
          (Cjq.Anti, expect_keyword "join" rest)
      | t :: rest
        when is_keyword "left" t || is_keyword "right" t
             || is_keyword "full" t ->
          let k =
            if is_keyword "left" t then Cjq.Left_outer
            else if is_keyword "right" t then Cjq.Right_outer
            else Cjq.Full_outer
          in
          let rest =
            match rest with
            | t' :: more when is_keyword "outer" t' -> more
            | _ -> rest
          in
          (k, expect_keyword "join" rest)
      | _ -> fail "expected JOIN clause"
    in
    match rest with
    | right :: rest ->
        let rest = expect_keyword "on" rest in
        ([ left; right ], rest, kind)
    | [] -> fail "expected stream name after JOIN"
  in
  let starts_join_clause = function
    | t :: _ ->
        List.exists
          (fun k -> is_keyword k t)
          [ "join"; "inner"; "left"; "right"; "full"; "anti" ]
    | [] -> false
  in
  let rec parse_atoms acc = function
    | [] -> List.rev acc
    | lhs :: "=" :: rhs :: rest ->
        let s1, a1 = dotted lhs and s2, a2 = dotted rhs in
        let atom =
          try Relational.Predicate.atom s1 a1 s2 a2
          with Invalid_argument m -> fail "%s" m
        in
        let rest =
          match rest with
          | token :: more when is_keyword "and" token -> more
          | [] -> []
          | token :: _ -> fail "expected AND, got %S" token
        in
        parse_atoms (atom :: acc) rest
    | token :: _ -> fail "cannot parse condition at %S" token
  in
  let rest = expect_keyword "select" tokens in
  let projection, rest = parse_projection [] rest in
  let stream_names, rest, kind =
    match rest with
    | first :: more when starts_join_clause more -> parse_join_clause first more
    | _ ->
        let names, rest = parse_streams [] rest in
        (names, rest, Cjq.Inner)
  in
  let atoms = parse_atoms [] rest in
  let stream_defs =
    List.map
      (fun name ->
        try Stream_def.find defs name
        with Not_found -> fail "stream %S is not declared" name)
      stream_names
  in
  let cjq = Cjq.make ~kind stream_defs atoms in
  (* validate the projection against the joined schema naming convention *)
  (match projection with
  | None -> ()
  | Some attrs ->
      List.iter
        (fun qualified ->
          let stream, attr = dotted qualified in
          if not (List.mem stream stream_names) then
            fail "SELECT references %S which is not in FROM" stream;
          let schema = Stream_def.schema (Stream_def.find defs stream) in
          if not (Relational.Schema.mem schema attr) then
            fail "stream %s has no attribute %s" stream attr)
        attrs);
  { cjq; projection }
