open Relational
module Scheme = Streams.Scheme
module Stream_def = Streams.Stream_def

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

let strip s = String.trim s

let split_top_commas s =
  (* No nesting in this grammar, a plain split suffices. *)
  String.split_on_char ',' s |> List.map strip
  |> List.filter (fun x -> x <> "")

(* "name(body)" -> (name, body) *)
let parse_call line s =
  match String.index_opt s '(' with
  | None -> fail line "expected '(' in %S" s
  | Some i ->
      if s.[String.length s - 1] <> ')' then fail line "expected ')' in %S" s;
      ( strip (String.sub s 0 i),
        String.sub s (i + 1) (String.length s - i - 2) )

let ty_of_string line = function
  | "int" -> Value.TInt
  | "str" | "string" -> Value.TStr
  | "float" -> Value.TFloat
  | "bool" -> Value.TBool
  | other -> fail line "unknown type %S" other

let parse_attr line s =
  match String.split_on_char ':' s with
  | [ name; ty ] -> { Schema.name = strip name; ty = ty_of_string line (strip ty) }
  | _ -> fail line "expected 'name:type', got %S" s

let parse_mark line = function
  | "+" -> Scheme.Punctuatable
  | "^" -> Scheme.Ordered
  | "_" -> Scheme.Not_punctuatable
  | other -> fail line "scheme mark must be '+', '^' or '_', got %S" other

let parse_join line s =
  match String.split_on_char '=' s with
  | [ lhs; rhs ] ->
      let endpoint side =
        match String.split_on_char '.' (strip side) with
        | [ stream; attr ] -> (strip stream, strip attr)
        | _ -> fail line "expected 'stream.attr', got %S" side
      in
      let s1, a1 = endpoint lhs and s2, a2 = endpoint rhs in
      (try Predicate.atom s1 a1 s2 a2
       with Invalid_argument m -> fail line "%s" m)
  | _ -> fail line "expected 'S1.a = S2.b', got %S" s

let parse_statements ~allow_joins text =
  let schemas : (string * Schema.t) list ref = ref [] in
  let schemes : (string * Scheme.t) list ref = ref [] in
  let atoms = ref [] in
  let kind = ref Cjq.Inner in
  let handle_line lineno raw =
    let stripped =
      match String.index_opt raw '#' with
      | Some i -> strip (String.sub raw 0 i)
      | None -> strip raw
    in
    if stripped <> "" then
      match String.index_opt stripped ' ' with
      | None -> fail lineno "cannot parse statement %S" stripped
      | Some i ->
          let keyword = String.sub stripped 0 i in
          let rest = strip (String.sub stripped i (String.length stripped - i)) in
          (match keyword with
          | "stream" ->
              let name, body = parse_call lineno rest in
              if List.mem_assoc name !schemas then
                fail lineno "stream %S declared twice" name;
              let attrs = List.map (parse_attr lineno) (split_top_commas body) in
              let schema =
                try Schema.make ~stream:name attrs
                with Invalid_argument m -> fail lineno "%s" m
              in
              schemas := (name, schema) :: !schemas
          | "scheme" ->
              let name, body = parse_call lineno rest in
              let schema =
                match List.assoc_opt name !schemas with
                | Some s -> s
                | None -> fail lineno "scheme for undeclared stream %S" name
              in
              let marks = List.map (parse_mark lineno) (split_top_commas body) in
              let scheme =
                try Scheme.make schema marks
                with Invalid_argument m -> fail lineno "%s" m
              in
              schemes := (name, scheme) :: !schemes
          | "join" ->
              if allow_joins then atoms := parse_join lineno rest :: !atoms
              else fail lineno "join statements are not allowed here"
          | "semantics" ->
              (* Which join family the query runs under; the first declared
                 stream is the left side. *)
              if not allow_joins then
                fail lineno "semantics statements are not allowed here"
              else (
                match Cjq.kind_of_string rest with
                | Some k -> kind := k
                | None ->
                    fail lineno
                      "semantics must be inner, left, right, full or anti, \
                       got %S"
                      rest)
          | other -> fail lineno "unknown keyword %S" other)
  in
  List.iteri
    (fun i line -> handle_line (i + 1) line)
    (String.split_on_char '\n' text);
  let defs =
    List.rev_map
      (fun (name, schema) ->
        let ss = List.filter_map
            (fun (n, sch) -> if n = name then Some sch else None)
            (List.rev !schemes)
        in
        Stream_def.make schema ss)
      !schemas
  in
  (defs, List.rev !atoms, !kind)

let parse text =
  let defs, atoms, kind = parse_statements ~allow_joins:true text in
  Cjq.make ~kind defs atoms

let parse_defs text =
  let defs, _, _ = parse_statements ~allow_joins:false text in
  defs

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let parse_file path = parse (read_file path)
let parse_defs_file path = parse_defs (read_file path)

let to_text query =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      let schema = Stream_def.schema d in
      Buffer.add_string buf
        (Fmt.str "stream %s(%s)\n" (Stream_def.name d)
           (String.concat ", "
              (List.map
                 (fun a ->
                   Fmt.str "%s:%s" a.Schema.name (Value.ty_to_string a.Schema.ty))
                 (Schema.attributes schema))));
      List.iter
        (fun sch ->
          Buffer.add_string buf
            (Fmt.str "scheme %s(%s)\n" (Stream_def.name d)
               (String.concat ", "
                  (List.map
                     (function
                       | Scheme.Punctuatable -> "+"
                       | Scheme.Ordered -> "^"
                       | Scheme.Not_punctuatable -> "_")
                     (Scheme.marks sch)))))
        (Stream_def.schemes d))
    (Cjq.stream_defs query);
  List.iter
    (fun a -> Buffer.add_string buf (Fmt.str "join %a\n" Predicate.pp_atom a))
    (Cjq.predicates query);
  (match Cjq.kind query with
  | Cjq.Inner -> ()
  | k ->
      Buffer.add_string buf
        (Fmt.str "semantics %s\n" (Cjq.kind_to_string k)));
  Buffer.contents buf
