(** A small SQL-style front end — the paper's future work (iv), scoped to
    what the safety theory covers:

    {v
    SELECT item.itemid, bid.increase
    FROM item, bid
    WHERE item.itemid = bid.itemid AND ...

    SELECT * FROM item LEFT OUTER JOIN bid ON item.itemid = bid.itemid
    SELECT * FROM item ANTI JOIN bid ON item.itemid = bid.itemid
    v}

    - [SELECT *] or a list of qualified attributes (the projection is
      returned for the caller to apply with {!Engine.Project});
    - [FROM] lists declared streams (their punctuation schemes come from
      the stream definitions);
    - [WHERE] is a conjunction of equi-join atoms [s.a = t.b];
    - explicit binary join clauses [a \[INNER | LEFT | RIGHT | FULL
      \[OUTER\] | ANTI\] JOIN b ON atoms] select the join family
      ({!Cjq.join_kind}); the left operand is the preserved side of LEFT
      and ANTI joins.

    Keywords are case-insensitive; identifiers are case-sensitive. *)

exception Sql_error of string

type query = {
  cjq : Cjq.t;
  projection : string list option;
      (** qualified output attributes ("stream.attr"), [None] for [*] *)
}

(** [parse ~defs text] resolves stream names against [defs].
    @raise Sql_error on syntax problems (with the offending token);
    @raise Cjq.Invalid when the parsed query is semantically invalid
    (unknown attribute, type mismatch, cross product...). *)
val parse : defs:Streams.Stream_def.t list -> string -> query
