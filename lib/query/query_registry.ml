open Relational

type entry = { qid : string; query : Cjq.t }

type t = { entries : entry list }

let create entries =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if String.length e.qid = 0 then
        invalid_arg "Query_registry.create: empty qid";
      if Hashtbl.mem seen e.qid then
        invalid_arg
          (Printf.sprintf "Query_registry.create: duplicate qid %S" e.qid);
      Hashtbl.add seen e.qid ())
    entries;
  { entries }

let entries t = t.entries
let qids t = List.map (fun e -> e.qid) t.entries

let find t qid =
  match List.find_opt (fun e -> e.qid = qid) t.entries with
  | Some e -> e.query
  | None -> invalid_arg (Printf.sprintf "Query_registry.find: no query %S" qid)

type candidate = {
  streams : string list;
  members : (string * Cjq.t) list;
  fusable : bool;
}

(* The renaming-invariant signature: stream names fix the positions, then
   every attribute is its (stream index, schema position) coordinate and
   every atom a normalized coordinate pair. Attribute types ride along so
   coincidentally isomorphic atoms over differently-typed columns do not
   collide. *)
let canonical_key query names =
  let names = List.sort_uniq String.compare names in
  match Cjq.restrict query names with
  | exception Cjq.Invalid _ -> None
  | sub ->
      let index_of s =
        let rec go i = function
          | [] -> invalid_arg "Query_registry.canonical_key"
          | n :: _ when String.equal n s -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 names
      in
      let coord s attr =
        let schema = Cjq.schema_of sub s in
        let i = Schema.attr_index schema attr in
        let ty = (Schema.attr_at schema i).Schema.ty in
        Printf.sprintf "%d.%d:%s" (index_of s) i (Value.ty_to_string ty)
      in
      let atoms =
        List.map
          (fun a ->
            let s1, s2 = Predicate.streams_of a in
            let c1 = coord s1 (Predicate.attr_on a s1) in
            let c2 = coord s2 (Predicate.attr_on a s2) in
            if String.compare c1 c2 <= 0 then c1 ^ "=" ^ c2 else c2 ^ "=" ^ c1)
          (Cjq.predicates sub)
        |> List.sort String.compare
      in
      Some (String.concat "," names ^ "|" ^ String.concat "&" atoms)

(* Connected stream subsets of size >= 2, discovered by growing connected
   sets one adjacent stream at a time. Exponential like the planner's DP;
   queries are small. *)
let subjoins query =
  let names = List.sort String.compare (Cjq.stream_names query) in
  let preds = Cjq.predicates query in
  let adjacent set s =
    (not (List.mem s set))
    && List.exists
         (fun a ->
           Predicate.involves a s
           && List.exists (fun s' -> Predicate.involves a s') set)
         preds
  in
  let tbl = Hashtbl.create 64 in
  let rec grow set =
    let key = String.concat "," set in
    if not (Hashtbl.mem tbl key) then begin
      if List.length set >= 2 then Hashtbl.replace tbl key set
      else Hashtbl.replace tbl key [];
      List.iter
        (fun s ->
          if adjacent set s then
            grow (List.sort String.compare (s :: set)))
        names
    end
  in
  List.iter (fun s -> grow [ s ]) names;
  Hashtbl.fold (fun _ set acc -> if set = [] then acc else set :: acc) tbl []
  |> List.sort (fun a b ->
         match compare (List.length b) (List.length a) with
         | 0 -> compare a b
         | c -> c)

let literally_equal (sub1 : Cjq.t) (sub2 : Cjq.t) =
  List.for_all2
    (fun d1 d2 ->
      Relational.Schema.equal
        (Streams.Stream_def.schema d1)
        (Streams.Stream_def.schema d2))
    (Cjq.stream_defs sub1) (Cjq.stream_defs sub2)
  && List.length (Cjq.predicates sub1) = List.length (Cjq.predicates sub2)
  && List.for_all2 Predicate.atom_equal
       (List.sort Predicate.atom_compare (Cjq.predicates sub1))
       (List.sort Predicate.atom_compare (Cjq.predicates sub2))

let shared_candidates t =
  (* key -> (streams, members rev) in first-seen order *)
  let order = ref [] in
  let groups : (string, string list * (string * Cjq.t) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun e ->
      if Cjq.kind e.query = Cjq.Inner then
        List.iter
          (fun names ->
            match canonical_key e.query names with
            | None -> ()
            | Some key ->
                let sub = Cjq.restrict e.query names in
                (match Hashtbl.find_opt groups key with
                | Some (_, members) -> members := (e.qid, sub) :: !members
                | None ->
                    order := key :: !order;
                    Hashtbl.replace groups key (names, ref [ (e.qid, sub) ])))
          (subjoins e.query))
    t.entries;
  List.rev !order
  |> List.filter_map (fun key ->
         let streams, members = Hashtbl.find groups key in
         match List.rev !members with
         | _ :: _ :: _ as members ->
             let _, first = List.hd members in
             let fusable =
               List.for_all
                 (fun (_, sub) -> literally_equal first sub)
                 (List.tl members)
             in
             Some { streams; members; fusable }
         | _ -> None)
  |> List.stable_sort (fun a b ->
         compare (List.length b.streams) (List.length a.streams))
