(* Watermarks (ordered punctuations) — the extension beyond the paper's
   equality punctuations, and the bridge to modern stream processors: an
   order-fulfilment join where both streams advance monotonically (modulo a
   bounded reordering slack) and emit periodic watermarks on order_id.

   The safety checker treats an ordered ("^") scheme like a punctuatable
   one — a single watermark past a value covers it — so the query is safe,
   and at runtime one advancing watermark per stream keeps both the join
   state AND the punctuation store tiny.

     dune exec examples/watermark.exe -- [n_orders] [slack]
*)

module Element = Streams.Element

let () =
  let n_orders =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let slack =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
  in
  let cfg = { Workload.Orders.default_config with n_orders; slack } in
  let query = Workload.Orders.query () in
  Fmt.pr "query: %a@." Query.Cjq.pp query;
  Fmt.pr "schemes: %a  (^ = ordered / watermark)@."
    Streams.Scheme.Set.pp (Query.Cjq.scheme_set query);

  let report = Core.Checker.check query in
  Fmt.pr "safe: %b@.@." report.Core.Checker.safe;

  let trace = Workload.Orders.trace cfg in
  Fmt.pr "trace: %d tuples, %d watermarks@."
    (Streams.Trace.data_count trace)
    (Streams.Trace.punct_count trace);

  let compiled =
    Engine.Executor.compile
      ~config:(Engine.Executor.Config.make ~policy:Engine.Purge_policy.Eager ()) query
      (Query.Plan.mjoin [ "orders"; "shipments" ])
  in
  let result =
    Engine.Executor.run ~sample_every:200 compiled (List.to_seq trace)
  in
  let matched =
    List.length (List.filter Element.is_data result.Engine.Executor.outputs)
  in
  Fmt.pr "matched %d of %d orders@." matched
    (Workload.Orders.expected_matches cfg);
  Fmt.pr "state series:@.%a@." Engine.Metrics.pp_series
    result.Engine.Executor.metrics;
  Fmt.pr
    "peak join state: %d tuples; peak punctuation store: %d (advancing \
     watermarks collapse by subsumption)@."
    (Engine.Metrics.peak_data_state result.Engine.Executor.metrics)
    (Engine.Metrics.peak_punct_state result.Engine.Executor.metrics)
