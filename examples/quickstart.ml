(* Quickstart: declare two punctuated streams, check the query is safe,
   run it, and watch punctuations keep the join state bounded.

     dune exec examples/quickstart.exe
*)

open Relational
module Scheme = Streams.Scheme
module Element = Streams.Element

let () =
  (* 1. Declare streams with their punctuation schemes. Here: an auction's
     item and bid streams, both punctuatable on itemid. *)
  let item =
    Schema.make ~stream:"item"
      [
        { Schema.name = "itemid"; ty = Value.TInt };
        { Schema.name = "price"; ty = Value.TInt };
      ]
  in
  let bid =
    Schema.make ~stream:"bid"
      [
        { Schema.name = "itemid"; ty = Value.TInt };
        { Schema.name = "amount"; ty = Value.TInt };
      ]
  in
  let defs =
    [
      Streams.Stream_def.make item [ Scheme.of_attrs item [ "itemid" ] ];
      Streams.Stream_def.make bid [ Scheme.of_attrs bid [ "itemid" ] ];
    ]
  in

  (* 2. Define the continuous join query. *)
  let query =
    Query.Cjq.make defs [ Predicate.atom "item" "itemid" "bid" "itemid" ]
  in

  (* 3. Check safety before admitting the query (Theorem 2/4/5). *)
  let report = Core.Checker.check query in
  Fmt.pr "--- safety report ---@.%a@.@." Core.Checker.pp_report report;
  assert report.Core.Checker.safe;

  (* 4. Run it. Feed a tiny hand-written trace: two items, three bids, and
     the punctuations that close each auction. *)
  let d schema values = Element.Data (Tuple.make schema values) in
  let close schema itemid =
    Element.Punct
      (Streams.Punctuation.of_bindings schema [ ("itemid", Value.Int itemid) ])
  in
  let trace =
    [
      d item [ Value.Int 1; Value.Int 100 ];
      close item 1 (* itemids are unique: punctuate right away *);
      d bid [ Value.Int 1; Value.Int 10 ];
      d item [ Value.Int 2; Value.Int 50 ];
      close item 2;
      d bid [ Value.Int 1; Value.Int 20 ];
      close bid 1 (* auction 1 closes: no more bids for itemid 1 *);
      d bid [ Value.Int 2; Value.Int 5 ];
      close bid 2;
    ]
  in
  let compiled =
    Engine.Executor.compile
      ~config:(Engine.Executor.Config.make ~policy:Engine.Purge_policy.Eager ()) query
      (Query.Plan.mjoin [ "item"; "bid" ])
  in
  let result = Engine.Executor.run compiled (List.to_seq trace) in

  Fmt.pr "--- results ---@.";
  List.iter
    (fun e ->
      match e with
      | Element.Data t -> Fmt.pr "match: %a@." Tuple.pp t
      | Element.Punct p ->
          Fmt.pr "propagated punctuation: %a@." Streams.Punctuation.pp p)
    result.Engine.Executor.outputs;

  Fmt.pr "@.--- state over time (punctuations purge as they arrive) ---@.";
  Fmt.pr "%a@." Engine.Metrics.pp_series result.Engine.Executor.metrics;
  Fmt.pr "final stored tuples: %d (everything was purged)@."
    (Engine.Executor.total_data_state compiled)
