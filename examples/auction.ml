(* The full Example 1 / Figure 1 pipeline: track the difference between the
   final and initial price of every auctioned item by joining the item and
   bid streams on itemid and summing the bid increases per item.

   Punctuations do two jobs here, exactly as the paper describes:
   - unique itemids (punctuations on the item stream) let the join purge
     bids as soon as their item has arrived;
   - auction-close punctuations on the bid stream let the join purge items
     and let the blocking group-by emit each item's total.

     dune exec examples/auction.exe -- [n_items] [bids_per_item]
*)

open Relational
module Element = Streams.Element

let () =
  let n_items =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let bids_per_item =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8
  in
  let cfg = { Workload.Auction.default_config with n_items; bids_per_item } in
  let query = Workload.Auction.query () in
  Fmt.pr "query: %a@." Query.Cjq.pp query;
  Fmt.pr "safe: %b@.@." (Core.Checker.is_safe query);

  let trace = Workload.Auction.trace cfg in
  Fmt.pr "trace: %d tuples, %d punctuations@." (Streams.Trace.data_count trace)
    (Streams.Trace.punct_count trace);

  let compiled =
    Engine.Executor.compile
      ~config:(Engine.Executor.Config.make ~policy:Engine.Purge_policy.Eager ()) query
      (Query.Plan.mjoin [ "item"; "bid" ])
  in
  let groupby =
    Engine.Groupby.create
      ~input:(Engine.Executor.output_schema compiled)
      ~group_by:[ "bid.itemid" ]
      ~aggregate:(Engine.Groupby.Sum "bid.increase") ()
  in
  let result =
    Engine.Executor.run ~sample_every:200 ~sink:groupby compiled
      (List.to_seq trace)
  in

  let groups =
    List.filter_map
      (function Element.Data t -> Some t | Element.Punct _ -> None)
      result.Engine.Executor.outputs
  in
  Fmt.pr "emitted %d per-item totals; first five:@." (List.length groups);
  List.iteri
    (fun i t -> if i < 5 then Fmt.pr "  item %a raised %a@."
          Value.pp (Tuple.get_named t "bid.itemid")
          Value.pp (Tuple.get_named t "agg"))
    groups;

  (* verify against the generator's ground truth *)
  let expected = Workload.Auction.expected_sums cfg in
  let correct =
    List.for_all
      (fun (itemid, total) ->
        List.exists
          (fun t ->
            Tuple.get_named t "bid.itemid" = Value.Int itemid
            &&
            match Tuple.get_named t "agg" with
            | Value.Float f -> Float.abs (f -. total) < 1e-9
            | _ -> false)
          groups)
      expected
  in
  Fmt.pr "all %d totals match the ground truth: %b@.@." (List.length expected)
    correct;

  Fmt.pr "join state over time (%d elements total):@."
    result.Engine.Executor.consumed;
  Fmt.pr "%a@." Engine.Metrics.pp_series result.Engine.Executor.metrics;
  Fmt.pr
    "peak stored tuples: %d — versus %d tuples that would pile up unpurged@."
    (Engine.Metrics.peak_data_state result.Engine.Executor.metrics)
    (Streams.Trace.data_count trace)
