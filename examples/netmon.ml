(* Network monitoring (§5.1): correlate the two directions of TCP flows by
   joining on (flowid, seq). Flow-end (FIN) punctuations purge the per-flow
   state; punctuation lifespans keep the punctuation store itself bounded —
   the paper's TCP sequence-number wrap argument.

     dune exec examples/netmon.exe -- [n_flows] [drop_fin_probability]
*)

module Element = Streams.Element

let () =
  let n_flows =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400
  in
  let drop_fin_prob =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.0
  in
  let cfg = { Workload.Netmon.default_config with n_flows; drop_fin_prob } in
  let query = Workload.Netmon.query () in
  Fmt.pr "query: %a@." Query.Cjq.pp query;
  Fmt.pr "safe: %b@.@." (Core.Checker.is_safe query);

  let run ~lifespan =
    let compiled =
      Engine.Executor.compile
        ~config:
          (Engine.Executor.Config.make ~policy:Engine.Purge_policy.Eager
             ?punct_lifespan:lifespan ())
        query
        (Query.Plan.mjoin [ "inbound"; "outbound" ])
    in
    let trace = Workload.Netmon.trace cfg in
    let r = Engine.Executor.run ~sample_every:500 compiled (List.to_seq trace) in
    let matched =
      List.length (List.filter Element.is_data r.Engine.Executor.outputs)
    in
    (matched, r.Engine.Executor.metrics)
  in

  let matched, metrics = run ~lifespan:None in
  Fmt.pr "matched packet pairs: %d (expected %d)@." matched
    (Workload.Netmon.expected_matches cfg);
  Fmt.pr "peak data state: %d tuples, peak punctuation store: %d@."
    (Engine.Metrics.peak_data_state metrics)
    (Engine.Metrics.peak_punct_state metrics);

  (* §5.1: bound the punctuation store with a lifespan. *)
  let matched_ls, metrics_ls =
    run ~lifespan:(Some { Core.Punct_purge.ttl = 300 })
  in
  Fmt.pr
    "@.with a punctuation lifespan of 300 ticks:@.matched %d, peak punct \
     store %d (was %d)@."
    matched_ls
    (Engine.Metrics.peak_punct_state metrics_ls)
    (Engine.Metrics.peak_punct_state metrics);

  if drop_fin_prob > 0.0 then begin
    match Engine.Metrics.final metrics with
    | Some s ->
        Fmt.pr
          "@.%d tuples stranded by lost FIN punctuations — §5.1's case for a \
           background cleanup@."
          s.Engine.Metrics.data_state
    | None -> ()
  end
